// Reproduces the Section 6.4 compression-speed table: single-threaded
// compression throughput starting from CSV text and from the in-memory
// binary format, plus the achieved compression factor.
#include <cstdio>

#include "common.h"
#include "datagen/csv.h"

namespace btr::bench {
namespace {

struct SpeedRow {
  const char* name;
  double from_csv_mbps;
  double from_binary_mbps;
  double factor;
};

void Run() {
  std::vector<Relation> corpus = PbiCorpus(/*rows_per_table=*/64000,
                                           /*tables=*/3);
  // CSV forms of the corpus.
  std::vector<std::string> csvs;
  u64 csv_bytes = 0;
  u64 binary_bytes = 0;
  for (const Relation& table : corpus) {
    csvs.push_back(datagen::WriteCsv(table));
    csv_bytes += csvs.back().size();
    binary_bytes += table.UncompressedBytes();
  }

  auto measure = [&](const char* name, auto compress_fn) {
    // From binary: compress the already-parsed relations.
    Timer binary_timer;
    u64 compressed_bytes = 0;
    for (const Relation& table : corpus) compressed_bytes += compress_fn(table);
    double binary_seconds = binary_timer.ElapsedSeconds();
    // From CSV: parse + compress.
    Timer csv_timer;
    for (size_t t = 0; t < csvs.size(); t++) {
      Relation parsed("t");
      Status status = datagen::ReadCsv(csvs[t], &parsed);
      BTR_CHECK(status.ok());
      compress_fn(parsed);
    }
    double csv_seconds = csv_timer.ElapsedSeconds();
    return SpeedRow{name, csv_bytes / csv_seconds / 1e6,
                    binary_bytes / binary_seconds / 1e6,
                    static_cast<double>(binary_bytes) / compressed_bytes};
  };

  SpeedRow rows[3] = {
      measure("BtrBlocks",
              [](const Relation& r) {
                CompressionConfig config;
                return CompressRelation(r, config).CompressedBytes();
              }),
      measure("Parquet+Snappy-class",
              [](const Relation& r) {
                lakeformat::ParquetOptions options;
                options.codec = gpc::CodecKind::kLz77;
                return static_cast<u64>(
                    lakeformat::WriteParquetLike(r, options).size());
              }),
      measure("Parquet+Zstd-class",
              [](const Relation& r) {
                lakeformat::ParquetOptions options;
                options.codec = gpc::CodecKind::kEntropyLz;
                return static_cast<u64>(
                    lakeformat::WriteParquetLike(r, options).size());
              }),
  };
  std::printf("\n%-22s  %14s  %16s  %14s\n", "format", "from CSV MB/s",
              "from binary MB/s", "compr. factor");
  for (const SpeedRow& row : rows) {
    std::printf("%-22s  %14.1f  %16.1f  %13.2fx\n", row.name, row.from_csv_mbps,
                row.from_binary_mbps, row.factor);
  }
  Report("btrblocks.from_csv_mbps", rows[0].from_csv_mbps, "MB/s",
         MetricKind::kThroughput);
  Report("btrblocks.from_binary_mbps", rows[0].from_binary_mbps, "MB/s",
         MetricKind::kThroughput);
  Report("btrblocks.compression_factor", rows[0].factor, "x",
         MetricKind::kRatio);
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("compression_speed");
  btr::bench::PrintHeader(
      "Section 6.4: single-threaded compression speed (CSV / binary)");
  btr::bench::Run();
  return 0;
}
