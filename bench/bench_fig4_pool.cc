// Reproduces Figure 4: compression ratio and single-threaded decompression
// throughput as encoding techniques are successively added to the scheme
// pool, per data type.
#include <cstdio>
#include <vector>

#include "common.h"

namespace btr::bench {
namespace {

std::vector<Relation> ColumnsOfType(const std::vector<Relation>& corpus,
                                    ColumnType type) {
  std::vector<Relation> result;
  for (const Relation& table : corpus) {
    for (const Column& column : table.columns()) {
      if (column.type() != type) continue;
      std::vector<Relation> single = SingleColumnRelation(column);
      result.push_back(std::move(single[0]));
    }
  }
  return result;
}

template <typename CodeT>
void RunType(const char* type_name, const std::vector<Relation>& columns,
             const std::vector<std::pair<const char*, CodeT>>& additions,
             u32 CompressionConfig::*mask_field) {
  std::printf("\n--- %s columns (%zu) ---\n", type_name, columns.size());
  std::printf("%-16s  %10s  %14s\n", "+ technique", "ratio", "decomp GB/s");
  u32 mask = 0;
  FormatResult last;
  for (const auto& [name, code] : additions) {
    mask |= 1u << static_cast<u32>(code);
    CompressionConfig config;
    config.*mask_field = mask;
    last = MeasureBtr(columns, config);
    std::printf("%-16s  %9.2fx  %14.2f\n", name, last.Ratio(),
                last.DecompressGBps());
  }
  // The full-pool row is the figure's headline per type.
  Report(std::string(type_name) + ".full_pool.ratio", last.Ratio(), "x",
         MetricKind::kRatio);
  Report(std::string(type_name) + ".full_pool.decompress_gbps",
         last.DecompressGBps(), "GB/s", MetricKind::kThroughput,
         kDecompressRepeats);
}

}  // namespace
}  // namespace btr::bench

int main() {
  using namespace btr;
  using namespace btr::bench;
  InitBench("fig4_pool");
  PrintHeader(
      "Figure 4: scheme-pool ablation — ratio & single-thread decompression");
  std::vector<Relation> corpus = PbiCorpus();

  RunType<IntSchemeCode>(
      "integer", ColumnsOfType(corpus, ColumnType::kInteger),
      {{"uncompressed", IntSchemeCode::kUncompressed},
       {"one value", IntSchemeCode::kOneValue},
       {"bitpack128", IntSchemeCode::kBp128},
       {"fastpfor", IntSchemeCode::kPfor},
       {"rle", IntSchemeCode::kRle},
       {"dictionary", IntSchemeCode::kDict},
       {"frequency", IntSchemeCode::kFrequency}},
      &CompressionConfig::int_schemes);

  RunType<DoubleSchemeCode>(
      "double", ColumnsOfType(corpus, ColumnType::kDouble),
      {{"uncompressed", DoubleSchemeCode::kUncompressed},
       {"one value", DoubleSchemeCode::kOneValue},
       {"rle", DoubleSchemeCode::kRle},
       {"dictionary", DoubleSchemeCode::kDict},
       {"frequency", DoubleSchemeCode::kFrequency},
       {"pseudodecimal", DoubleSchemeCode::kPseudodecimal}},
      &CompressionConfig::double_schemes);

  RunType<StringSchemeCode>(
      "string", ColumnsOfType(corpus, ColumnType::kString),
      {{"uncompressed", StringSchemeCode::kUncompressed},
       {"one value", StringSchemeCode::kOneValue},
       {"fsst", StringSchemeCode::kFsst},
       {"dictionary", StringSchemeCode::kDict},
       {"dict+fsst", StringSchemeCode::kDictFsst}},
      &CompressionConfig::string_schemes);
  return 0;
}
