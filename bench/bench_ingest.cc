// Streaming ingest benchmark: chunked appends through write::StreamingWriter
// into the simulated object store — the crash-safe write path of
// docs/WRITE_PATH.md, measured end to end (compress, stage multipart
// parts, verify, manifest swap).
//
// Headline metrics (BENCH_ingest.json, gated against bench/baselines/):
//   ingest.rows_per_second   append+commit throughput, rows/s
//   ingest.put_requests      PUT-class requests per commit (deterministic)
//   ingest.compressed_bytes  bytes staged per commit (deterministic)
//   ingest.commit_seconds    Commit() alone: trailing flush -> manifest swap
#include <cstdio>
#include <vector>

#include "common.h"
#include "datagen/public_bi.h"
#include "s3sim/object_store.h"
#include "util/timer.h"
#include "write/streaming_writer.h"

namespace btr::bench {
namespace {

Relation SliceRows(const Relation& table, u32 begin, u32 count) {
  Relation chunk(table.name());
  for (const Column& src : table.columns()) {
    Column& dst = chunk.AddColumn(src.name(), src.type());
    for (u32 r = begin; r < begin + count; r++) {
      if (src.IsNull(r)) {
        dst.AppendNull();
        continue;
      }
      switch (src.type()) {
        case ColumnType::kInteger: dst.AppendInt(src.ints()[r]); break;
        case ColumnType::kDouble: dst.AppendDouble(src.doubles()[r]); break;
        case ColumnType::kString: dst.AppendString(src.GetString(r)); break;
      }
    }
  }
  return chunk;
}

void Run() {
  const u32 rows = 8 * kBlockCapacity * BenchScale();
  const u32 chunk_rows = 10000;
  Relation table = datagen::MakePublicBiTable("ingest_bench", rows, 17);

  // Pre-slice outside the timed region: the benchmark measures the write
  // path (compression, staging, verification, commit), not row copying.
  std::vector<Relation> chunks;
  for (u32 begin = 0; begin < rows; begin += chunk_rows) {
    chunks.push_back(SliceRows(table, begin, std::min(chunk_rows, rows - begin)));
  }

  PrintHeader("Streaming ingest (write::StreamingWriter -> s3sim)");

  const int kRepeats = 3;
  double best_total = 1e30, best_commit = 1e30;
  u64 put_requests = 0, bytes_put = 0;
  for (int repeat = 0; repeat < kRepeats; repeat++) {
    s3sim::ObjectStore store;
    write::StreamingWriter writer(&store, "ingest_bench", "bench/");
    Timer total;
    Status status = writer.Begin(
        [&] {
          std::vector<write::StreamingWriter::ColumnSpec> schema;
          for (const Column& c : table.columns())
            schema.push_back({c.name(), c.type()});
          return schema;
        }());
    for (const Relation& chunk : chunks) {
      if (!status.ok()) break;
      status = writer.Append(chunk);
    }
    BTR_CHECK_MSG(status.ok(), "ingest append failed");
    Timer commit;
    status = writer.Commit();
    BTR_CHECK_MSG(status.ok(), "ingest commit failed");
    best_commit = std::min(best_commit, commit.ElapsedSeconds());
    best_total = std::min(best_total, total.ElapsedSeconds());
    put_requests = store.total_put_requests();
    bytes_put = store.total_bytes_put();
  }

  double rows_per_second = rows / best_total;
  std::printf("%u rows in %.3f s  (%.2f Mrows/s), commit %.3f s\n", rows,
              best_total, rows_per_second / 1e6, best_commit);
  std::printf("%llu PUT requests, %.2f MiB staged\n",
              static_cast<unsigned long long>(put_requests),
              bytes_put / 1048576.0);

  Reporter::Get().Report("ingest.rows_per_second", rows_per_second, "rows/s",
                         MetricKind::kThroughput, kRepeats);
  Reporter::Get().Report("ingest.put_requests",
                         static_cast<double>(put_requests), "requests",
                         MetricKind::kCount, kRepeats);
  Reporter::Get().Report("ingest.compressed_bytes",
                         static_cast<double>(bytes_put), "bytes",
                         MetricKind::kBytes, kRepeats);
  Reporter::Get().Report("ingest.commit_seconds", best_commit, "s",
                         MetricKind::kTime, kRepeats);
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("ingest");
  btr::bench::Run();
  return 0;
}
