// Reproduces Figure 1 and Table 5: end-to-end S3 scan cost and throughput
// on the five largest Public-BI-like datasets.
//
// Per DESIGN.md, AWS is simulated: the network (100 Gbit/s), GET request
// billing ($0.0004 / 1000) and instance rate ($3.89/h for c5n.18xlarge)
// are modeled, decompression time is measured on this machine
// single-threaded and divided across the modeled 36 cores (decompression
// parallelizes over columns and blocks).
#include <atomic>
#include <cstdio>
#include <thread>

#include "common.h"
#include "s3sim/object_store.h"
#include "service/scan_service.h"
#include "util/random.h"
#include "write/manifest.h"

namespace btr::bench {
namespace {

struct FormatScan {
  const char* name;
  FormatResult measured;
};

void Run() {
  std::vector<Relation> corpus = PbiCorpus();
  s3sim::S3Config s3;

  std::vector<FormatScan> formats;
  {
    CompressionConfig config;
    formats.push_back({"BtrBlocks", MeasureBtr(corpus, config)});
  }
  for (auto [label, codec] :
       {std::pair{"Parquet", gpc::CodecKind::kNone},
        std::pair{"Parquet+Snappy-class", gpc::CodecKind::kLz77},
        std::pair{"Parquet+Zstd-class", gpc::CodecKind::kEntropyLz}}) {
    lakeformat::ParquetOptions options;
    options.codec = codec;
    formats.push_back({label, MeasureParquetLike(corpus, options)});
  }

  // Exercise the simulated object store end to end for the BtrBlocks
  // files: upload, chunked GETs, request accounting.
  {
    CompressionConfig config;
    s3sim::ObjectStore store(s3);
    u32 object_count = 0;
    for (const Relation& table : corpus) {
      CompressedRelation compressed = CompressRelation(table, config);
      for (const CompressedColumn& column : compressed.columns) {
        // One file per column (paper Section 6.7's metadata layout).
        ByteBuffer file;
        for (const ByteBuffer& block : column.blocks) {
          file.Append(block.data(), block.size());
        }
        Status put_status =
            store.Put(table.name() + "/" + column.name, file.data(),
                      file.size());
        BTR_CHECK_MSG(put_status.ok(), "object store exercise PUT failed");
        object_count++;
      }
    }
    std::vector<u8> blob;
    for (const Relation& table : corpus) {
      for (const Column& column : table.columns()) {
        Status status = store.GetObject(table.name() + "/" + column.name(), &blob);
        BTR_CHECK_MSG(status.ok(), "object store exercise GET failed");
      }
    }
    std::printf("\nObject store exercise: %u column objects, %llu GETs, "
                "%.2f MiB fetched, %.3f s of modeled network time\n",
                object_count,
                static_cast<unsigned long long>(store.total_requests()),
                store.total_bytes_fetched() / 1048576.0,
                store.network_seconds());
  }

  // -- Measured pipelined scan (btr::Scanner) vs sequential baseline ------
  // Unlike the analytic model below (kept as the comparison column), this
  // section *executes* a scan twice against an object store whose GETs
  // cost real wall-clock time (first-byte latency + transfer at a single
  // flow's bandwidth):
  //   baseline:  the same per-block ranged GETs, issued one at a time,
  //              each block decoded on the calling thread before the next
  //              GET goes out — no overlap anywhere.
  //   pipelined: btr::Scanner with 8 scan threads and 8 fetch threads;
  //              GET latencies overlap each other and decoding.
  {
    CompressionConfig config;
    Relation table = datagen::MakePublicBiTable("pipeline_bench",
                                                8 * kBlockCapacity, 21);
    CompressedRelation compressed = CompressRelation(table, config);

    s3sim::S3Config wall = s3;
    wall.simulate_wall_clock = true;
    wall.wall_clock_request_latency_s = 0.01;  // 10 ms to first byte per GET
    wall.wall_clock_gbps = 2.0;                // one network flow
    s3sim::ObjectStore store(wall);
    Status status =
        UploadCompressedRelation(compressed, nullptr, "bench/", &store);
    BTR_CHECK_MSG(status.ok(), "pipeline bench upload failed");

    Timer seq_timer;
    std::vector<u8> chunk;
    DecodedBlock block;
    u64 sequential_rows = 0;
    for (size_t c = 0; c < compressed.columns.size(); c++) {
      const CompressedColumn& column = compressed.columns[c];
      // The upload committed through the versioned write path; resolve the
      // physical ".v<N>" name the way Scanner::Open does.
      std::string resolved;
      status = write::ResolveCommittedName(&store, "bench/", "pipeline_bench",
                                           &resolved);
      BTR_CHECK_MSG(status.ok(), "pipeline bench manifest resolve failed");
      std::string key = ColumnFileKey("bench/", resolved, c);
      u64 offset = ColumnFileHeaderBytes(column.blocks.size());
      for (const ByteBuffer& b : column.blocks) {
        status = store.GetChunk(key, offset, b.size(), &chunk);
        BTR_CHECK_MSG(status.ok(), "sequential baseline GET failed");
        offset += b.size();
        ByteBuffer padded;
        padded.Append(chunk.data(), chunk.size());
        DecompressBlock(padded.data(), &block, config);
        sequential_rows += block.count;
      }
    }
    double sequential_seconds = seq_timer.ElapsedSeconds();

    Scanner scanner(&store, "pipeline_bench", "bench/");
    BTR_CHECK_MSG(scanner.Open().ok(), "pipeline bench open failed");
    ScanSpec spec;
    spec.config.scan_threads = 8;
    spec.config.fetch_threads = 8;
    spec.config.prefetch_depth = 16;
    // Collect the per-scan profile (obs/profile.h): the printed report is
    // the worked example docs/OBSERVABILITY.md walks through.
    spec.config.collect_profile = true;
    ScanStats stats;
    u64 pipelined_rows = 0;
    status = scanner.Scan(
        spec,
        [&](ColumnChunk&& emitted) { pipelined_rows += emitted.values.count; },
        &stats);
    BTR_CHECK_MSG(status.ok(), "pipelined scan failed");
    BTR_CHECK_MSG(pipelined_rows == sequential_rows,
                  "pipelined scan decoded a different row count");

    std::printf("\n-- Measured scan: pipelined Scanner vs sequential "
                "GET-then-decompress --\n");
    std::printf("   (%zu columns x %zu blocks, 10 ms first-byte latency, "
                "2 Gbit/s per flow)\n",
                compressed.columns.size(),
                compressed.columns[0].blocks.size());
    std::printf("%-42s  %8.3f s\n", "sequential (1 GET in flight, 1 thread)",
                sequential_seconds);
    std::printf("%-42s  %8.3f s\n",
                "pipelined (8 scan threads, 8 fetch threads)", stats.seconds);
    std::printf("%-42s  %7.1fx\n", "speedup", sequential_seconds / stats.seconds);
    Report("scan.sequential_seconds", sequential_seconds, "s",
           MetricKind::kTime);
    Report("scan.pipelined_seconds", stats.seconds, "s", MetricKind::kTime);
    Report("scan.pipeline_speedup", sequential_seconds / stats.seconds, "x",
           MetricKind::kThroughput);
    Report("scan.bytes_fetched", static_cast<double>(stats.bytes_fetched),
           "bytes", MetricKind::kBytes);
    if (stats.profile != nullptr) {
      std::printf("\n-- Per-scan profile of the pipelined scan "
                  "(docs/OBSERVABILITY.md) --\n%s",
                  stats.profile->ToText().c_str());
    }

    // -- Warm block cache: repeat scan without touching the store ----------
    // Same Scanner with the checksum-verified block cache on: the cold
    // scan pays the GETs and admits every verified payload, the warm scan
    // is served entirely from memory — zero GETs, so the 10 ms first-byte
    // latency and the 2 Gbit/s flow disappear from the critical path.
    ScanSpec cached = spec;
    cached.config.enable_block_cache = true;
    Scanner cached_scanner(&store, "pipeline_bench", "bench/");
    BTR_CHECK_MSG(cached_scanner.Open().ok(), "cache bench open failed");
    ScanStats cold_stats;
    u64 cold_rows = 0;
    status = cached_scanner.Scan(
        cached,
        [&](ColumnChunk&& emitted) { cold_rows += emitted.values.count; },
        &cold_stats);
    BTR_CHECK_MSG(status.ok(), "cold cached scan failed");
    ScanStats warm_stats;
    u64 warm_rows = 0;
    status = cached_scanner.Scan(
        cached,
        [&](ColumnChunk&& emitted) { warm_rows += emitted.values.count; },
        &warm_stats);
    BTR_CHECK_MSG(status.ok(), "warm cached scan failed");
    BTR_CHECK_MSG(warm_rows == sequential_rows,
                  "warm scan decoded a different row count");
    BTR_CHECK_MSG(warm_stats.requests == 0,
                  "warm scan must issue zero GETs for cached blocks");

    std::printf("\n-- Warm block cache: repeat scan, zero GETs --\n");
    std::printf("%-42s  %8.3f s  (%llu GETs)\n", "cold (populates the cache)",
                cold_stats.seconds,
                static_cast<unsigned long long>(cold_stats.requests));
    std::printf("%-42s  %8.3f s  (%llu GETs, %llu cache hits)\n",
                "warm (checksum-verified cache)", warm_stats.seconds,
                static_cast<unsigned long long>(warm_stats.requests),
                static_cast<unsigned long long>(warm_stats.cache_hits));
    std::printf("%-42s  %7.1fx\n", "speedup vs cold",
                cold_stats.seconds / warm_stats.seconds);
    Report("scan.warm_cache_seconds", warm_stats.seconds, "s",
           MetricKind::kTime);
    Report("scan.warm_cache_hits", static_cast<double>(warm_stats.cache_hits),
           "hits", MetricKind::kCount);
    Report("scan.warm_cache_requests",
           static_cast<double>(warm_stats.requests), "GETs",
           MetricKind::kCount);
  }

  // -- Multi-tenant ScanService: one shared cache, fair scheduling --------
  // 104 concurrent scans from 4 tenants through one btr::service::
  // ScanService (docs/SCAN_SERVICE.md): the shared checksum-verified cache
  // means the whole storm is served from memory once any tenant has paid
  // the GETs, and the deficit-round-robin queues keep a hog tenant from
  // starving a light one. The isolated baseline runs the same 104 scans as
  // standalone Scanners — private caches, so all 104 pay their own GETs.
  {
    CompressionConfig config;
    Relation table =
        datagen::MakePublicBiTable("svc_bench", 4 * kBlockCapacity, 33);
    CompressedRelation compressed = CompressRelation(table, config);
    s3sim::S3Config wall = s3;
    wall.simulate_wall_clock = true;
    wall.wall_clock_request_latency_s = 0.002;  // 2 ms to first byte per GET
    wall.wall_clock_gbps = 4.0;
    s3sim::ObjectStore store(wall);
    Status status =
        UploadCompressedRelation(compressed, nullptr, "svc/", &store);
    BTR_CHECK_MSG(status.ok(), "service bench upload failed");

    const char* kTenants[4] = {"alpha", "beta", "gamma", "delta"};
    const u32 kScans = 104;
    ScanSpec spec;
    spec.config.scan_threads = 2;
    spec.config.fetch_threads = 2;
    spec.config.prefetch_depth = 8;

    service::ScanServiceConfig service_config;
    service_config.fetch_threads = 8;
    service_config.max_concurrent_scans = 32;
    service_config.max_queued_scans = kScans;
    service_config.admission_timeout_ns = 60ull * 1000 * 1000 * 1000;
    service::ScanService service(service_config);

    auto serviced_scan = [&](const std::string& tenant,
                             std::atomic<u64>* rows) {
      Scanner scanner(service, tenant, &store, "svc_bench", "svc/");
      BTR_CHECK_MSG(scanner.Open(spec.config).ok(), "service bench open failed");
      u64 mine = 0;
      Status scan_status = scanner.Scan(
          spec,
          [&](ColumnChunk&& emitted) {
            if (emitted.column == 0) mine += emitted.row_count;
          },
          nullptr);
      BTR_CHECK_MSG(scan_status.ok(), "serviced scan failed");
      rows->fetch_add(mine);
    };

    // One scan under a dedicated tenant pays the cold GETs; every block is
    // then in the shared cache, so the 104-scan storm across the four real
    // tenants must not touch the store at all.
    std::atomic<u64> warm_rows{0};
    serviced_scan("warmup", &warm_rows);

    std::atomic<u64> storm_rows{0};
    Timer storm_timer;
    std::vector<std::thread> storm;
    storm.reserve(kScans);
    for (u32 i = 0; i < kScans; i++) {
      storm.emplace_back(
          [&, i] { serviced_scan(kTenants[i % 4], &storm_rows); });
    }
    for (std::thread& t : storm) t.join();
    double storm_seconds = storm_timer.ElapsedSeconds();
    BTR_CHECK_MSG(storm_rows.load() == kScans * warm_rows.load(),
                  "serviced storm decoded a different row count");
    u64 storm_gets = 0;
    for (const char* tenant : kTenants) {
      storm_gets += service.GetTenantStats(tenant).gets;
    }

    // Isolated baseline: the same 104 scans, each a standalone Scanner
    // with a private cache — no sharing, every scan pays its own GETs.
    std::atomic<u64> isolated_rows{0};
    Timer isolated_timer;
    std::vector<std::thread> isolated;
    isolated.reserve(kScans);
    for (u32 i = 0; i < kScans; i++) {
      isolated.emplace_back([&] {
        Scanner scanner(&store, "svc_bench", "svc/");
        BTR_CHECK_MSG(scanner.Open(spec.config).ok(),
                      "isolated bench open failed");
        ScanSpec private_spec = spec;
        private_spec.config.enable_block_cache = true;
        u64 mine = 0;
        Status scan_status = scanner.Scan(
            private_spec,
            [&](ColumnChunk&& emitted) {
              if (emitted.column == 0) mine += emitted.row_count;
            },
            nullptr);
        BTR_CHECK_MSG(scan_status.ok(), "isolated scan failed");
        isolated_rows.fetch_add(mine);
      });
    }
    for (std::thread& t : isolated) t.join();
    double isolated_seconds = isolated_timer.ElapsedSeconds();
    BTR_CHECK_MSG(isolated_rows.load() == storm_rows.load(),
                  "isolated storm decoded a different row count");

    // Fairness under a hog: tenant "hog" floods the (still warm) service
    // while tenant "light" runs a handful of scans; DRR lanes must keep
    // the light tenant's queue waits bounded.
    std::atomic<u64> fair_rows{0};
    std::vector<std::thread> fair;
    for (u32 i = 0; i < 24; i++) {
      fair.emplace_back([&] { serviced_scan("hog", &fair_rows); });
    }
    for (u32 i = 0; i < 4; i++) {
      fair.emplace_back([&] { serviced_scan("light", &fair_rows); });
    }
    for (std::thread& t : fair) t.join();
    u64 light_p95_ns = service.GetTenantStats("light").queue_wait_p95_ns;

    std::printf("\n-- Multi-tenant ScanService: %u scans, 4 tenants, one "
                "shared cache --\n", kScans);
    std::printf("%-42s  %8.3f s  (%llu tenant GETs)\n",
                "serviced storm (shared warm cache)", storm_seconds,
                static_cast<unsigned long long>(storm_gets));
    std::printf("%-42s  %8.3f s\n", "isolated baseline (private caches)",
                isolated_seconds);
    std::printf("%-42s  %7.1fx\n", "aggregate speedup",
                isolated_seconds / storm_seconds);
    std::printf("%-42s  %8.3f ms\n", "light tenant p95 queue wait under hog",
                light_p95_ns / 1e6);
    Report("scan.service.storm_seconds", storm_seconds, "s", MetricKind::kTime);
    Report("scan.service.storm_gets", static_cast<double>(storm_gets), "GETs",
           MetricKind::kCount);
    Report("scan.service.isolated_seconds", isolated_seconds, "s",
           MetricKind::kTime);
    Report("scan.service.aggregate_speedup", isolated_seconds / storm_seconds,
           "x", MetricKind::kThroughput);
    Report("scan.service.light_p95_queue_wait_seconds", light_p95_ns / 1e9,
           "s", MetricKind::kTime);
  }

  // Scale the measured corpus to the paper's dataset size (119.5 GB in
  // memory) so the fixed first-byte latency does not dominate: ratios and
  // per-byte decompression cost are intensive quantities and scale
  // exactly; only the modeled transfer grows.
  const double kTargetBytes = 119.5e9;
  auto scaled = [&](const FormatResult& f) {
    double factor = kTargetBytes / static_cast<double>(f.uncompressed_bytes);
    s3sim::ScanMeasurement m;
    m.compressed_bytes = static_cast<u64>(f.compressed_bytes * factor);
    m.uncompressed_bytes = static_cast<u64>(kTargetBytes);
    m.single_thread_decompress_seconds = f.decompress_seconds * factor;
    return m;
  };

  double base_cost = 0;
  std::printf("\n-- Table 5: S3 scan (scaled to 119.5 GB of table data) --\n");
  std::printf("%-24s  %10s  %10s  %12s  %12s\n", "format", "T_r GB/s",
              "T_c Gbit/s", "cost/scan $", "normalized");
  for (const FormatScan& f : formats) {
    s3sim::ScanResult r = s3sim::SimulateScan(scaled(f.measured), s3);
    if (base_cost == 0) {
      base_cost = r.cost_usd;
      Report("table5.btrblocks.tc_gbit", r.tc_gbit, "Gbit/s",
             MetricKind::kThroughput);
      Report("table5.btrblocks.cost_usd", r.cost_usd, "$", MetricKind::kTime);
    }
    std::printf("%-24s  %10.1f  %10.1f  %12.4f  %11.2fx\n", f.name, r.tr_gbps,
                r.tc_gbit, r.cost_usd, r.cost_usd / base_cost);
  }

  // -- Section 6.7, "Loading individual columns" ---------------------------
  // OLAP queries fetch a few columns. BtrBlocks stores one file per column
  // plus a separate table-metadata file, so a K-column query fetches only
  // those objects. Parquet bundles all columns per file with a footer at
  // the end; per the paper, loading the whole file is usually faster than
  // the three dependent ranged GETs, so that is what we model.
  {
    CompressionConfig config;
    Random rng(99);
    double btr_cost = 0, parquet_cost[3] = {0, 0, 0};
    u32 query_count = 0;
    for (const Relation& table : corpus) {
      // Scale each table to the paper's dataset size (119.5 GB over five
      // datasets) so the fixed first-byte latency does not flatten the
      // comparison.
      double factor = (kTargetBytes / corpus.size()) /
                      static_cast<double>(table.UncompressedBytes());
      CompressedRelation compressed = CompressRelation(table, config);
      std::vector<u64> column_bytes;
      for (const CompressedColumn& column : compressed.columns) {
        column_bytes.push_back(
            static_cast<u64>(column.CompressedBytes() * factor));
      }
      lakeformat::ParquetOptions popts[3];
      popts[1].codec = gpc::CodecKind::kLz77;
      popts[2].codec = gpc::CodecKind::kEntropyLz;
      u64 parquet_bytes[3];
      for (int v = 0; v < 3; v++) {
        parquet_bytes[v] = static_cast<u64>(
            lakeformat::WriteParquetLike(table, popts[v]).size() * factor);
      }
      // Ten random 3-column queries per table.
      for (int q = 0; q < 10; q++) {
        query_count++;
        u64 fetched = 0;
        for (int k = 0; k < 3; k++) {
          fetched += column_bytes[rng.NextBounded(column_bytes.size())];
        }
        auto cost_of = [&](u64 bytes, u32 extra_requests) {
          double seconds = static_cast<double>(bytes) * 8.0 /
                               (s3.network_gbps * 1e9) +
                           s3.first_byte_latency_s;
          u64 requests = extra_requests + (bytes + s3.chunk_bytes - 1) /
                                              s3.chunk_bytes;
          return seconds / 3600.0 * s3.instance_cost_per_hour +
                 requests * s3.request_cost_usd;
        };
        btr_cost += cost_of(fetched, /*metadata GET=*/1);
        for (int v = 0; v < 3; v++) {
          parquet_cost[v] += cost_of(parquet_bytes[v], 0);
        }
      }
    }
    std::printf("\n-- Section 6.7: loading 3 random columns per query "
                "(%u queries) --\n", query_count);
    std::printf("%-24s  %16s  %10s\n", "format", "avg cost/query $",
                "vs BtrBlocks");
    std::printf("%-24s  %16.7f  %9.1fx\n", "BtrBlocks (per-column)",
                btr_cost / query_count, 1.0);
    const char* names[3] = {"Parquet (whole file)", "Parquet+Snappy-class",
                            "Parquet+Zstd-class"};
    for (int v = 0; v < 3; v++) {
      std::printf("%-24s  %16.7f  %9.1fx\n", names[v],
                  parquet_cost[v] / query_count, parquet_cost[v] / btr_cost);
    }
  }

  std::printf("\n-- Figure 1: scan cost vs throughput --\n");
  std::printf("%-24s  %14s  %16s\n", "format", "$ / TB scanned",
              "S3 scan Gbit/s (T_c)");
  for (const FormatScan& f : formats) {
    s3sim::ScanMeasurement m = scaled(f.measured);
    s3sim::ScanResult r = s3sim::SimulateScan(m, s3);
    double dollars_per_tb =
        r.cost_usd / (static_cast<double>(m.uncompressed_bytes) / 1e12);
    std::printf("%-24s  %14.3f  %16.1f\n", f.name, dollars_per_tb, r.tc_gbit);
  }
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("s3_scan");
  btr::bench::PrintHeader("Figure 1 + Table 5: simulated S3 scan cost");
  btr::bench::Run();
  return 0;
}
