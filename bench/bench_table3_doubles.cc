// Reproduces Table 3 (Pseudodecimal Encoding vs FPC / Gorilla / Chimp /
// Chimp128 on large double columns) and the Section 6.5 inline table
// (BP vs Dict vs RLE vs PDE, each followed by a fixed FastBP128 cascade).
//
// The twelve Public BI columns are substituted by archetype columns that
// replicate the families the paper names (pricing data, coordinates,
// zero-dominated telco counters, high-precision values).
#include <cstdio>
#include <vector>

#include "bitpack/bitpack.h"
#include "btr/schemes/double_schemes.h"
#include "common.h"
#include "datagen/archetypes.h"
#include "floatcomp/chimp.h"
#include "floatcomp/fpc.h"
#include "floatcomp/gorilla.h"

namespace btr::bench {
namespace {

constexpr u32 kRows = 64000;

struct NamedColumn {
  const char* name;
  std::vector<double> values;
};

std::vector<NamedColumn> MakeColumns() {
  using datagen::DoubleArchetype;
  using datagen::MakeDoubles;
  return {
      {"CommonGov./10 (mixed)", MakeDoubles(DoubleArchetype::kMixedWithNulls, kRows, 10)},
      {"CommonGov./26 (runs)", MakeDoubles(DoubleArchetype::kPriceRuns, kRows, 26)},
      {"CommonGov./30 (price)", MakeDoubles(DoubleArchetype::kPrice2Decimals, kRows, 30)},
      {"CommonGov./31 (price)", MakeDoubles(DoubleArchetype::kPrice2Decimals, kRows, 31)},
      {"CommonGov./40 (zero-dom)", MakeDoubles(DoubleArchetype::kZeroDominant, kRows, 40)},
      {"Arade/4 (mixed)", MakeDoubles(DoubleArchetype::kMixedWithNulls, kRows, 4)},
      {"NYC/29 (coordinates)", MakeDoubles(DoubleArchetype::kCoordinates, kRows, 29)},
      {"CMSProvider/1 (freq)", MakeDoubles(DoubleArchetype::kFrequencyTail, kRows, 1)},
      {"CMSProvider/9 (price)", MakeDoubles(DoubleArchetype::kPrice2Decimals, kRows, 9)},
      {"CMSProvider/25 (coords)", MakeDoubles(DoubleArchetype::kCoordinates, kRows, 25)},
      {"Medicare/1 (freq)", MakeDoubles(DoubleArchetype::kFrequencyTail, kRows, 101)},
      {"Medicare/9 (price)", MakeDoubles(DoubleArchetype::kPrice2Decimals, kRows, 109)},
  };
}

double Ratio(u64 compressed_bytes) {
  return static_cast<double>(kRows) * sizeof(double) / compressed_bytes;
}

// PDE with the paper's fixed two-level cascade: encode (digits, exponents)
// and always compress both integer vectors with FastBP128.
u64 PdeFixedCascadeBytes(const std::vector<double>& values) {
  std::vector<i32> digits(values.size());
  std::vector<i32> exps(values.size());
  std::vector<double> patches;
  for (size_t i = 0; i < values.size(); i++) {
    auto d = pseudodecimal::EncodeSingle(values[i]);
    digits[i] = d.digits;
    exps[i] = static_cast<i32>(d.exp);
    if (d.exp == pseudodecimal::kExponentException) patches.push_back(d.patch);
  }
  ByteBuffer out;
  bitpack::Bp128Compress(digits.data(), static_cast<u32>(digits.size()), &out);
  bitpack::Bp128Compress(exps.data(), static_cast<u32>(exps.size()), &out);
  return out.size() + patches.size() * sizeof(double);
}

// A double scheme with all integer cascades fixed to FastBP128.
u64 SchemeFixedCascadeBytes(DoubleSchemeCode code,
                            const std::vector<double>& values) {
  CompressionConfig config;
  config.double_schemes = (1u << static_cast<u32>(DoubleSchemeCode::kUncompressed)) |
                          (1u << static_cast<u32>(code));
  config.int_schemes = (1u << static_cast<u32>(IntSchemeCode::kUncompressed)) |
                       (1u << static_cast<u32>(IntSchemeCode::kBp128));
  CompressionContext ctx{&config, config.max_cascade_depth};
  const DoubleScheme& scheme = GetDoubleScheme(code);
  ByteBuffer out;
  return scheme.Compress(values.data(), static_cast<u32>(values.size()), &out,
                         ctx);
}

// Plain FastBP128 over the raw IEEE 754 words (the paper's sanity check
// that bit-packing is ineffective on doubles).
u64 RawBitpackBytes(const std::vector<double>& values) {
  ByteBuffer out;
  bitpack::Bp128Compress(reinterpret_cast<const i32*>(values.data()),
                         static_cast<u32>(values.size() * 2), &out);
  return out.size();
}

void Run() {
  std::vector<NamedColumn> columns = MakeColumns();

  std::printf("\n-- Table 3: PDE vs dedicated double compressors --\n");
  std::printf("%-26s  %7s %8s %7s %9s %7s\n", "column", "FPC", "Gorilla",
              "Chimp", "Chimp128", "PDE");
  u64 pde_total = 0, chimp128_total = 0;
  for (const NamedColumn& column : columns) {
    ByteBuffer fpc, gorilla, chimp, chimp128;
    floatcomp::FpcCompress(column.values.data(), kRows, &fpc);
    floatcomp::GorillaCompress(column.values.data(), kRows, &gorilla);
    floatcomp::ChimpCompress(column.values.data(), kRows, &chimp);
    floatcomp::Chimp128Compress(column.values.data(), kRows, &chimp128);
    pde_total += PdeFixedCascadeBytes(column.values);
    chimp128_total += chimp128.size();
    std::printf("%-26s  %6.2f %8.2f %7.2f %9.2f %7.2f\n", column.name,
                Ratio(fpc.size()), Ratio(gorilla.size()), Ratio(chimp.size()),
                Ratio(chimp128.size()), Ratio(PdeFixedCascadeBytes(column.values)));
  }
  double raw_bytes =
      static_cast<double>(columns.size()) * kRows * sizeof(double);
  Report("pde.aggregate_ratio", raw_bytes / pde_total, "x",
         MetricKind::kRatio);
  Report("chimp128.aggregate_ratio", raw_bytes / chimp128_total, "x",
         MetricKind::kRatio);

  std::printf(
      "\n-- Section 6.5: general schemes vs PDE (each -> FastBP128) --\n");
  std::printf("%-26s  %7s %7s %7s %7s\n", "column", "BP", "Dict", "RLE", "PDE");
  for (const NamedColumn& column : columns) {
    std::printf("%-26s  %6.2f %6.2f %6.2f %6.2f\n", column.name,
                Ratio(RawBitpackBytes(column.values)),
                Ratio(SchemeFixedCascadeBytes(DoubleSchemeCode::kDict,
                                              column.values)),
                Ratio(SchemeFixedCascadeBytes(DoubleSchemeCode::kRle,
                                              column.values)),
                Ratio(PdeFixedCascadeBytes(column.values)));
  }
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("table3_doubles");
  btr::bench::PrintHeader(
      "Table 3 + Section 6.5: Pseudodecimal Encoding vs other schemes");
  btr::bench::Run();
  return 0;
}
