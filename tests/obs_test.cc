// Observability tests: metrics registry (concurrent counters, histogram
// bucketing, export), span tracer (balanced Chrome JSON), and the cascade
// decision trace of a column with a known RLE -> Dict shape.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "btr/btrblocks.h"
#include "btr/datablock.h"
#include "btr/scanner.h"
#include "obs/cascade_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "s3sim/fault.h"
#include "s3sim/object_store.h"

namespace btr::obs {
namespace {

// --- counters ----------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; i++) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), static_cast<u64>(kThreads) * kPerThread);
}

TEST(CounterTest, AddWithArgumentAndReset) {
  Counter counter;
  counter.Add(5);
  counter.Add(37);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-20);
  EXPECT_EQ(gauge.Value(), -13);
}

// --- histograms --------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds only 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), 64u);
  for (u32 b = 1; b < Histogram::kBuckets; b++) {
    u64 lo = Histogram::BucketLowerBound(b);
    u64 hi = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "lower bound of bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(hi), b) << "upper bound of bucket " << b;
    if (b > 1) EXPECT_EQ(lo, Histogram::BucketUpperBound(b - 1) + 1);
  }
}

TEST(HistogramTest, RecordAggregates) {
  Histogram hist;
  hist.Record(0);
  hist.Record(7);
  hist.Record(7);
  hist.Record(100);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_EQ(hist.Sum(), 114u);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), 100u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 114.0 / 4.0);
  EXPECT_EQ(hist.BucketCount(0), 1u);                          // {0}
  EXPECT_EQ(hist.BucketCount(Histogram::BucketIndex(7)), 2u);  // [4,7]
  EXPECT_EQ(hist.BucketCount(Histogram::BucketIndex(100)), 1u);
}

TEST(HistogramTest, ConcurrentRecordCountsExactly) {
  Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; i++) {
        hist.Record(static_cast<u64>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), static_cast<u64>(kThreads) * kPerThread);
  u64 bucket_total = 0;
  for (u32 b = 0; b < Histogram::kBuckets; b++) bucket_total += hist.BucketCount(b);
  EXPECT_EQ(bucket_total, hist.Count());
}

// --- registry ----------------------------------------------------------------

TEST(RegistryTest, SameNameSameObject) {
  Counter& a = Registry::Get().GetCounter("obs_test.registry.same");
  Counter& b = Registry::Get().GetCounter("obs_test.registry.same");
  EXPECT_EQ(&a, &b);
  Counter& c = Registry::Get().GetCounter("obs_test.registry.other");
  EXPECT_NE(&a, &c);
}

TEST(RegistryTest, ExportJsonContainsRegisteredMetrics) {
  Registry& registry = Registry::Get();
  registry.GetCounter("obs_test.export.counter").Add(3);
  registry.GetGauge("obs_test.export.gauge").Set(-4);
  registry.GetHistogram("obs_test.export.hist").Record(12);
  std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"obs_test.export.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export.gauge\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export.hist\""), std::string::npos);
  // Crude but effective structural check: braces/brackets balance.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') depth++;
    if (c == '}' || c == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// String-aware structural check: braces/brackets must balance *outside*
// string literals, and every string must terminate. The naive depth check
// above would pass a document whose keys leak unescaped quotes.
void ExpectWellFormedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      // An unescaped control character inside a string is invalid JSON.
      ASSERT_FALSE(static_cast<unsigned char>(c) < 0x20)
          << "raw control char in string";
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string) << "unterminated string literal";
}

// Metric names are caller-chosen strings; quotes, backslashes, newlines
// and control characters must round-trip through ExportJson as valid
// escaped JSON instead of corrupting the document.
TEST(RegistryTest, ExportJsonEscapesHostileMetricNames) {
  Registry& registry = Registry::Get();
  registry.GetCounter("obs_test.esc.say_\"hi\"").Add(1);
  registry.GetCounter("obs_test.esc.back\\slash").Add(2);
  registry.GetCounter("obs_test.esc.line\nbreak\ttab").Add(3);
  registry.GetCounter(std::string("obs_test.esc.ctl\x01") + "end").Add(4);

  std::string json = registry.ExportJson();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("obs_test.esc.say_\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.esc.back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("obs_test.esc.line\\nbreak\\ttab"), std::string::npos);
  EXPECT_NE(json.find("obs_test.esc.ctl\\u0001end"), std::string::npos);
  // The raw (unescaped) forms must not appear.
  EXPECT_EQ(json.find("line\nbreak"), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

// --- tracer ------------------------------------------------------------------

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    n++;
  }
  return n;
}

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Reset();
  tracer.Disable();
  { ScopedSpan span("obs_test.disabled"); }
  EXPECT_EQ(tracer.SpanCount(), 0u);
}

TEST(TracerTest, ExportIsBalancedChromeJson) {
  Tracer& tracer = Tracer::Get();
  tracer.Reset();
  tracer.Enable();
  {
    ScopedSpan outer("obs_test.outer");
    ScopedSpan inner("obs_test.inner");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; t++) {
    threads.emplace_back([] {
      for (int i = 0; i < 10; i++) ScopedSpan span("obs_test.thread");
    });
  }
  for (std::thread& t : threads) t.join();
  tracer.Disable();

  EXPECT_EQ(tracer.SpanCount(), 2u + 3u * 10u);
  std::string json = tracer.ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Every span contributes exactly one begin and one end event.
  size_t begins = CountOccurrences(json, "\"ph\":\"B\"");
  size_t ends = CountOccurrences(json, "\"ph\":\"E\"");
  EXPECT_EQ(begins, tracer.SpanCount());
  EXPECT_EQ(ends, tracer.SpanCount());
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') depth++;
    if (c == '}' || c == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  tracer.Reset();
}

// Instant markers export as Chrome "i"-phase events with thread scope,
// interleaved with the B/E pairs.
TEST(TracerTest, InstantEventsExportAsIPhase) {
  Tracer& tracer = Tracer::Get();
  tracer.Reset();
  tracer.Enable();
  {
    ScopedSpan span("obs_test.around_instant");
    tracer.RecordInstant("obs_test.instant");
  }
  tracer.Disable();

  std::string json = tracer.ExportChromeJson();
  EXPECT_NE(json.find("\"name\":\"obs_test.instant\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
  tracer.Reset();
}

// A scan that dies mid-flight must still leave a coherent trace: every
// span balanced (flushed on scope unwind, not lost) plus a "scan.error"
// instant marking where it died.
TEST(TracerTest, FailedScanLeavesBalancedSpansAndErrorInstant) {
  Relation table("trace_table");
  Column& ints = table.AddColumn("v", ColumnType::kInteger);
  for (u32 i = 0; i < 5000; i++) ints.AppendInt(static_cast<i32>(i % 100));
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(table, config);
  s3sim::ObjectStore store;
  ASSERT_TRUE(
      UploadCompressedRelation(compressed, nullptr, "lake/", &store).ok());

  Scanner scanner(&store, "trace_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  // Every GET fails and retries are exhausted immediately: the scan must
  // return a typed error.
  s3sim::FaultPlan plan;
  plan.seed = 1;
  s3sim::FaultRule unavailable;
  unavailable.kind = s3sim::FaultKind::kUnavailable;
  unavailable.probability = 1.0;
  plan.rules.push_back(unavailable);
  store.InstallFaultPlan(plan);

  Tracer& tracer = Tracer::Get();
  tracer.Reset();
  tracer.Enable();
  ScanSpec spec;
  spec.config.max_attempts = 1;
  spec.config.initial_backoff_ns = 1000;
  spec.config.max_backoff_ns = 2000;
  ScanOutput output;
  Status status = scanner.Scan(spec, &output);
  tracer.Disable();
  store.ClearFaultPlan();
  ASSERT_FALSE(status.ok());

  std::string json = tracer.ExportChromeJson();
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""))
      << "abnormal termination must not lose span ends";
  EXPECT_NE(json.find("\"name\":\"scan.error\""), std::string::npos);
  EXPECT_GE(CountOccurrences(json, "\"ph\":\"i\""), 1u);
  tracer.Reset();
}

// --- cascade trace -----------------------------------------------------------

// A column of 640 runs of length 100 cycling over 8 distinct wide values
// compresses as RLE at the root; the run-values vector (8 distinct values,
// too wide to bitpack well) becomes Dict at depth 1, and the constant
// run-lengths vector becomes OneValue at depth 1.
TEST(CascadeTraceTest, RleDictColumnMatchesExpectedTree) {
  std::vector<i32> values;
  values.reserve(64000);
  for (int run = 0; run < 640; run++) {
    for (int i = 0; i < 100; i++) values.push_back(1000000 + (run % 8) * 7919);
  }

  CompressionConfig config;
  config.collect_cascade_trace = true;
  BlockCompressionInfo info;
  ByteBuffer out;
  CompressIntBlock(values.data(), nullptr, static_cast<u32>(values.size()),
                   &out, config, &info);

  const CascadeNode& root = info.trace;
  EXPECT_EQ(root.scheme, static_cast<u8>(IntSchemeCode::kRle));
  EXPECT_EQ(root.depth, 0u);
  EXPECT_EQ(root.value_count, 64000u);
  EXPECT_EQ(root.input_bytes, 64000u * sizeof(i32));
  EXPECT_GT(root.output_bytes, 0u);
  EXPECT_GT(root.ActualRatio(), 10.0);  // long runs compress well
  EXPECT_GT(root.estimated_ratio, 0.0);
  // The picker evaluated several candidates; RLE must be among them.
  bool saw_rle_candidate = false;
  for (const CascadeCandidate& c : root.candidates) {
    if (c.scheme == static_cast<u8>(IntSchemeCode::kRle)) {
      saw_rle_candidate = true;
      EXPECT_GT(c.estimated_ratio, 1.0);
    }
  }
  EXPECT_TRUE(saw_rle_candidate);

  // RLE cascades exactly two child vectors: run values, then run lengths.
  ASSERT_EQ(root.children.size(), 2u);
  const CascadeNode& run_values = root.children[0];
  const CascadeNode& run_lengths = root.children[1];
  EXPECT_EQ(run_values.depth, 1u);
  EXPECT_EQ(run_lengths.depth, 1u);
  EXPECT_EQ(run_values.value_count, 640u);
  EXPECT_EQ(run_lengths.value_count, 640u);
  EXPECT_EQ(run_values.scheme, static_cast<u8>(IntSchemeCode::kDict));
  EXPECT_EQ(run_lengths.scheme, static_cast<u8>(IntSchemeCode::kOneValue));
  EXPECT_GT(run_values.output_bytes, 0u);
  EXPECT_GT(run_lengths.output_bytes, 0u);

  // Tree-wide invariants and renderers.
  EXPECT_GE(root.NodeCount(), 3u);
  EXPECT_GE(root.MaxDepth(), 1u);
  std::string text = CascadeTreeToString(root);
  EXPECT_NE(text.find("rle"), std::string::npos);
  EXPECT_NE(text.find("dict"), std::string::npos);
  EXPECT_NE(text.find("one_value"), std::string::npos);
  std::string json = CascadeTreeToJson(root);
  EXPECT_NE(json.find("\"scheme\":\"rle\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

TEST(CascadeTraceTest, DisabledLeavesTraceEmpty) {
  std::vector<i32> values(1000, 7);
  CompressionConfig config;  // collect_cascade_trace defaults to false
  BlockCompressionInfo info;
  ByteBuffer out;
  CompressIntBlock(values.data(), nullptr, static_cast<u32>(values.size()),
                   &out, config, &info);
  EXPECT_EQ(info.trace.value_count, 0u);
  EXPECT_TRUE(info.trace.children.empty());
}

// --- depth-indexed telemetry -------------------------------------------------

TEST(TelemetryTest, SchemeUsesByDepthAggregatesToRoot) {
  std::vector<i32> values;
  for (int run = 0; run < 640; run++) {
    for (int i = 0; i < 100; i++) values.push_back(1000000 + (run % 8) * 7919);
  }
  Telemetry telemetry;
  CompressionConfig config;
  config.telemetry = &telemetry;
  ByteBuffer out;
  CompressIntBlock(values.data(), nullptr, static_cast<u32>(values.size()),
                   &out, config, nullptr);

  constexpr u32 kInt = 0;
  constexpr u32 kRle = static_cast<u32>(IntSchemeCode::kRle);
  // Depth 0 rows mirror the legacy root aggregate.
  EXPECT_EQ(telemetry.scheme_uses[kInt][kRle], 1u);
  EXPECT_EQ(telemetry.scheme_uses_by_depth[0][kInt][kRle], 1u);
  // The cascade recorded children at depth 1.
  u64 depth1_total = 0;
  for (u32 s = 0; s < 16; s++) {
    depth1_total += telemetry.scheme_uses_by_depth[1][kInt][s];
  }
  EXPECT_EQ(depth1_total, 2u);  // RLE's run-values and run-lengths vectors
}

}  // namespace
}  // namespace btr::obs
