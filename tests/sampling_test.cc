// Tests for the sampling module (paper Section 3.1 / Figure 2) and the
// exhaustive-estimation oracle mode.
#include <gtest/gtest.h>

#include <vector>

#include "btr/sampling.h"
#include "btr/scheme_picker.h"

namespace btr {
namespace {

TEST(SamplingTest, DefaultIsTenRunsOfSixtyFour) {
  auto ranges = SampleRanges(64000, 10, 64, 42);
  ASSERT_EQ(ranges.size(), 10u);
  u32 total = 0;
  u32 part_size = 64000 / 10;
  for (size_t i = 0; i < ranges.size(); i++) {
    auto [begin, end] = ranges[i];
    EXPECT_EQ(end - begin, 64u);
    // Each run must stay within its non-overlapping part (Figure 2).
    EXPECT_GE(begin, i * part_size);
    EXPECT_LE(end, (i + 1 == ranges.size()) ? 64000u : (i + 1) * part_size);
    total += end - begin;
  }
  EXPECT_EQ(total, 640u);  // 1% of the block
}

TEST(SamplingTest, DeterministicForSameSeed) {
  auto a = SampleRanges(64000, 10, 64, 7);
  auto b = SampleRanges(64000, 10, 64, 7);
  EXPECT_EQ(a, b);
  auto c = SampleRanges(64000, 10, 64, 8);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
}

TEST(SamplingTest, SmallBlockFallsBackToFullRange) {
  auto ranges = SampleRanges(500, 10, 64, 42);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], std::make_pair(0u, 500u));
}

TEST(SamplingTest, ZeroCount) {
  EXPECT_TRUE(SampleRanges(0, 10, 64, 42).empty());
}

TEST(SamplingTest, BuildIntSamplePreservesRuns) {
  // A block of runs must produce a sample that still contains runs —
  // the reason for run-based sampling over random tuples.
  std::vector<i32> data(64000);
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<i32>(i / 100);
  CompressionConfig config;
  IntSample sample = BuildIntSample(data.data(), 64000, config);
  ASSERT_EQ(sample.values.size(), 640u);
  u32 run_count = 1;
  for (size_t i = 1; i < sample.values.size(); i++) {
    if (sample.values[i] != sample.values[i - 1]) run_count++;
  }
  // 10 runs of 64 over runs of 100: each sampled run has 1-2 distinct
  // values, so far fewer than 640 runs and an avg run length >= 2.
  EXPECT_LE(run_count, 30u);
}

TEST(SamplingTest, ExhaustiveModeUsesWholeBlock) {
  std::vector<i32> data(10000, 1);
  CompressionConfig config;
  config.exhaustive_estimation = true;
  IntSample sample = BuildIntSample(data.data(), 10000, config);
  EXPECT_EQ(sample.values.size(), 10000u);
}

TEST(SamplingTest, StringSampleMatchesRanges) {
  std::vector<u32> offsets;
  std::vector<u8> bytes;
  offsets.push_back(0);
  for (int i = 0; i < 64000; i++) {
    std::string s = "v" + std::to_string(i % 100);
    bytes.insert(bytes.end(), s.begin(), s.end());
    offsets.push_back(static_cast<u32>(bytes.size()));
  }
  StringsView view{offsets.data(), bytes.data(), 64000};
  CompressionConfig config;
  StringSample sample = BuildStringSample(view, config);
  EXPECT_EQ(sample.View().count, 640u);
  // Spot check: sampled strings are valid values from the input domain.
  for (u32 i = 0; i < sample.View().count; i++) {
    std::string_view s = sample.View().Get(i);
    EXPECT_EQ(s[0], 'v');
  }
}

TEST(SamplingTest, PickerAgreesWithOracleOnEasyShapes) {
  // On clear-cut distributions the 1% sample must pick the same scheme
  // as exhaustive estimation.
  CompressionConfig sampled;
  CompressionConfig oracle;
  oracle.exhaustive_estimation = true;

  std::vector<i32> constant(64000, 5);
  EXPECT_EQ(PickIntScheme(constant.data(), 64000, sampled),
            PickIntScheme(constant.data(), 64000, oracle));

  std::vector<i32> sequential(64000);
  for (i32 i = 0; i < 64000; i++) sequential[i] = i;
  EXPECT_EQ(PickIntScheme(sequential.data(), 64000, sampled),
            PickIntScheme(sequential.data(), 64000, oracle));
}

}  // namespace
}  // namespace btr
