// Unit tests for the retry accounting discipline, hedging state and the
// circuit breaker (exec/retry.h).
//
// The accounting contract under test: a retry is *reserved* by NextBackoff
// and only *counted* (scan.retries, retries_granted) once its backoff
// sleep completed — an interrupted sleep refunds the reservation and
// records nothing, so aborted scans cannot overcount retries or leak
// budget.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "exec/retry.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace btr::exec {
namespace {

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ns = 1000;  // 1 us
  policy.max_backoff_ns = 4000;
  policy.retry_budget = 16;
  return policy;
}

TEST(RetryTest, CommitsRetriesOnlyAfterSleepCompletes) {
  obs::Counter& retries = obs::Registry::Get().GetCounter("scan.retries");
  u64 base = retries.Value();

  RetryState state(FastPolicy());
  u32 calls = 0;
  Status status = RunWithRetries(&state, [&] {
    calls++;
    return calls < 4 ? Status::Throttled("synthetic") : Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(state.retries_granted(), 3u);
  EXPECT_EQ(retries.Value() - base, 3u);
}

// The satellite bugfix: a sleep interrupted by pipeline shutdown used to
// bump scan.retries and burn budget even though the retry never happened.
TEST(RetryTest, InterruptedSleepCountsNoRetryAndRefundsBudget) {
  obs::Counter& retries = obs::Registry::Get().GetCounter("scan.retries");
  u64 base = retries.Value();

  RetryPolicy policy = FastPolicy();
  policy.retry_budget = 1;  // one reservation total
  RetryState state(policy);

  u32 calls = 0;
  auto interrupted_sleep = [](u64) { return false; };  // stop arrived
  Status status = RunWithRetries(
      &state, [&] { calls++; return Status::Unavailable("synthetic"); },
      interrupted_sleep);
  EXPECT_TRUE(status.IsTransient());
  EXPECT_EQ(calls, 1u) << "interrupted backoff must not retry";
  EXPECT_EQ(state.retries_granted(), 0u);
  EXPECT_EQ(retries.Value(), base) << "no metric for a retry that never ran";

  // The reservation was refunded: the single unit of budget is still
  // available for a retry whose sleep completes.
  calls = 0;
  status = RunWithRetries(&state, [&] {
    calls++;
    return calls < 2 ? Status::Throttled("synthetic") : Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(state.retries_granted(), 1u);
  EXPECT_EQ(retries.Value() - base, 1u);
}

TEST(RetryTest, BudgetExhaustionStopsRetrying) {
  RetryPolicy policy = FastPolicy();
  policy.retry_budget = 2;
  RetryState state(policy);
  u32 calls = 0;
  Status status = RunWithRetries(
      &state, [&] { calls++; return Status::Throttled("synthetic"); });
  EXPECT_TRUE(status.IsThrottled());
  EXPECT_EQ(calls, 3u) << "1 try + 2 budgeted retries";
  EXPECT_EQ(state.retries_granted(), 2u);
}

TEST(HedgeTest, ThresholdArmsOnlyAfterMinSamples) {
  HedgePolicy policy;
  policy.enabled = true;
  policy.quantile = 0.5;
  policy.min_samples = 4;
  policy.min_threshold_ns = 10;
  HedgeState state(policy);

  EXPECT_EQ(state.ThresholdNs(), 0u) << "no samples yet";
  state.RecordLatency(100);
  state.RecordLatency(200);
  state.RecordLatency(300);
  EXPECT_EQ(state.ThresholdNs(), 0u) << "below min_samples";
  state.RecordLatency(400);
  u64 threshold = state.ThresholdNs();
  EXPECT_GE(threshold, 100u);
  EXPECT_LE(threshold, 400u);
}

TEST(HedgeTest, ThresholdIsFlooredAndDisabledStateNeverArms) {
  HedgePolicy policy;
  policy.enabled = true;
  policy.quantile = 0.5;
  policy.min_samples = 2;
  policy.min_threshold_ns = 1000000;  // floor far above the samples
  HedgeState state(policy);
  state.RecordLatency(10);
  state.RecordLatency(20);
  EXPECT_EQ(state.ThresholdNs(), 1000000u);

  HedgePolicy disabled;  // enabled defaults to false
  HedgeState off(disabled);
  off.RecordLatency(10);
  off.RecordLatency(20);
  off.RecordLatency(30);
  EXPECT_EQ(off.ThresholdNs(), 0u);
}

TEST(HedgeTest, BudgetCapsHedgesAndDisarmsThreshold) {
  HedgePolicy policy;
  policy.enabled = true;
  policy.min_samples = 1;
  policy.min_threshold_ns = 1;
  policy.hedge_budget = 2;
  HedgeState state(policy);
  state.RecordLatency(100);

  EXPECT_TRUE(state.TryAcquireHedge());
  EXPECT_TRUE(state.TryAcquireHedge());
  EXPECT_FALSE(state.TryAcquireHedge()) << "budget is 2";
  EXPECT_EQ(state.hedges_issued(), 2u);
  EXPECT_EQ(state.ThresholdNs(), 0u)
      << "an exhausted budget must disarm the threshold";

  state.RecordHedgeOutcome(true);
  state.RecordHedgeOutcome(false);
  EXPECT_EQ(state.hedge_wins(), 1u);
}

CircuitBreakerPolicy FastBreakerPolicy() {
  CircuitBreakerPolicy policy;
  policy.window = 8;
  policy.min_samples = 4;
  policy.failure_threshold = 0.5;
  policy.cooldown_ns = 2 * 1000 * 1000;  // 2 ms
  policy.half_open_probes = 2;
  return policy;
}

TEST(BreakerTest, TripsAtFailureThresholdAndFailsFast) {
  CircuitBreaker breaker(FastBreakerPolicy());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  breaker.Record(true);
  breaker.Record(false);
  breaker.Record(false);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed)
      << "3 outcomes < min_samples";
  breaker.Record(false);  // 3/4 failures >= 0.5
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.fast_failures(), 2u);
}

TEST(BreakerTest, HalfOpenProbesCloseOnSuccessReopenOnFailure) {
  CircuitBreakerPolicy policy = FastBreakerPolicy();
  CircuitBreaker breaker(policy);
  for (u32 i = 0; i < policy.min_samples; i++) breaker.Record(false);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  std::this_thread::sleep_for(std::chrono::nanoseconds(2 * policy.cooldown_ns));
  EXPECT_TRUE(breaker.Allow()) << "cooldown over: half-open probe";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.Record(false);  // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  std::this_thread::sleep_for(std::chrono::nanoseconds(2 * policy.cooldown_ns));
  EXPECT_TRUE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow()) << "only half_open_probes probes pass";
  breaker.Record(true);
  breaker.Record(true);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(BreakerTest, RunWithRetriesFailsFastWithoutCallingTheOp) {
  CircuitBreakerPolicy policy = FastBreakerPolicy();
  CircuitBreaker breaker(policy);
  for (u32 i = 0; i < policy.min_samples; i++) breaker.Record(false);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  RetryState state(FastPolicy());
  u32 calls = 0;
  Status status = RunWithRetries(
      &state, [&] { calls++; return Status::Ok(); }, SleepUninterruptible,
      &breaker);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_EQ(calls, 0u) << "fail-fast must not reach the backend";
  EXPECT_EQ(state.retries_granted(), 0u) << "no retry budget burned";
}

TEST(BreakerTest, PermanentErrorsCountAsHealthyResponses) {
  CircuitBreakerPolicy policy = FastBreakerPolicy();
  CircuitBreaker breaker(policy);
  RetryState state(FastPolicy());
  // NotFound means the backend answered; the breaker must stay closed.
  for (u32 i = 0; i < policy.window; i++) {
    Status status = RunWithRetries(
        &state, [] { return Status::NotFound("no such key"); },
        SleepUninterruptible, &breaker);
    EXPECT_TRUE(status.IsNotFound());
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

}  // namespace
}  // namespace btr::exec
