// Unit and property tests for the Roaring bitmap substrate.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bitmap/roaring.h"
#include "util/random.h"

namespace btr {
namespace {

TEST(RoaringTest, EmptyBitmap) {
  RoaringBitmap bitmap;
  EXPECT_TRUE(bitmap.Empty());
  EXPECT_EQ(bitmap.Cardinality(), 0u);
  EXPECT_FALSE(bitmap.Contains(0));
  EXPECT_FALSE(bitmap.IntersectsRange(0, 1000));
}

TEST(RoaringTest, AddAndContains) {
  RoaringBitmap bitmap;
  bitmap.Add(5);
  bitmap.Add(100000);
  bitmap.Add(5);  // duplicate
  EXPECT_EQ(bitmap.Cardinality(), 2u);
  EXPECT_TRUE(bitmap.Contains(5));
  EXPECT_TRUE(bitmap.Contains(100000));
  EXPECT_FALSE(bitmap.Contains(6));
}

TEST(RoaringTest, ArrayToBitsetPromotion) {
  RoaringBitmap bitmap;
  // > 4096 values in one 64k chunk forces the bitset container.
  for (u32 i = 0; i < 10000; i++) bitmap.Add(i * 3);
  EXPECT_EQ(bitmap.Cardinality(), 10000u);
  for (u32 i = 0; i < 10000; i++) {
    EXPECT_TRUE(bitmap.Contains(i * 3));
    if (i * 3 + 1 < 29999) EXPECT_FALSE(bitmap.Contains(i * 3 + 1));
  }
}

TEST(RoaringTest, RunOptimizeDense) {
  RoaringBitmap bitmap;
  bitmap.AddRange(100, 20000);  // one long run
  u64 before = bitmap.SerializedSizeBytes();
  bitmap.RunOptimize();
  u64 after = bitmap.SerializedSizeBytes();
  EXPECT_LT(after, before);
  EXPECT_EQ(bitmap.Cardinality(), 19900u);
  EXPECT_FALSE(bitmap.Contains(99));
  EXPECT_TRUE(bitmap.Contains(100));
  EXPECT_TRUE(bitmap.Contains(19999));
  EXPECT_FALSE(bitmap.Contains(20000));
}

TEST(RoaringTest, ForEachIsAscending) {
  RoaringBitmap bitmap;
  std::set<u32> expected;
  Random rng(11);
  for (int i = 0; i < 5000; i++) {
    u32 v = static_cast<u32>(rng.NextBounded(1 << 20));
    bitmap.Add(v);
    expected.insert(v);
  }
  std::vector<u32> got = bitmap.ToVector();
  std::vector<u32> want(expected.begin(), expected.end());
  EXPECT_EQ(got, want);
}

TEST(RoaringTest, IntersectsRange) {
  RoaringBitmap bitmap;
  bitmap.Add(10);
  bitmap.Add(1000);
  EXPECT_TRUE(bitmap.IntersectsRange(8, 12));
  EXPECT_FALSE(bitmap.IntersectsRange(11, 1000));
  EXPECT_TRUE(bitmap.IntersectsRange(1000, 1001));
}

class RoaringSerializationTest : public ::testing::TestWithParam<int> {};

TEST_P(RoaringSerializationTest, RoundTrip) {
  // Parameterized over density regimes to hit all three container kinds.
  int mode = GetParam();
  RoaringBitmap bitmap;
  std::set<u32> expected;
  Random rng(mode);
  auto add = [&](u32 v) {
    bitmap.Add(v);
    expected.insert(v);
  };
  switch (mode) {
    case 0:  // sparse
      for (int i = 0; i < 100; i++) add(static_cast<u32>(rng.NextBounded(1u << 30)));
      break;
    case 1:  // dense single chunk
      for (u32 i = 0; i < 30000; i++) add(i * 2);
      break;
    case 2:  // runs
      for (u32 base : {0u, 70000u, 200000u}) {
        for (u32 i = 0; i < 5000; i++) add(base + i);
      }
      break;
    case 3:  // mixed
      for (u32 i = 0; i < 6000; i++) add(i);
      for (int i = 0; i < 50; i++) add(static_cast<u32>(rng.NextBounded(1u << 25)));
      break;
  }
  bitmap.RunOptimize();
  ByteBuffer serialized;
  bitmap.SerializeTo(&serialized);
  EXPECT_EQ(serialized.size(), bitmap.SerializedSizeBytes());

  size_t consumed = 0;
  RoaringBitmap restored = RoaringBitmap::Deserialize(serialized.data(), &consumed);
  EXPECT_EQ(consumed, serialized.size());
  EXPECT_EQ(restored.Cardinality(), expected.size());
  std::vector<u32> got = restored.ToVector();
  std::vector<u32> want(expected.begin(), expected.end());
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Regimes, RoaringSerializationTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(RoaringTest, PropertyRandomVsReference) {
  // Property: RoaringBitmap behaves exactly like std::set<u32> under a
  // random add workload, across chunk boundaries.
  Random rng(77);
  RoaringBitmap bitmap;
  std::set<u32> reference;
  for (int i = 0; i < 20000; i++) {
    u32 v = static_cast<u32>(rng.NextBounded(1u << 18));
    bitmap.Add(v);
    reference.insert(v);
  }
  EXPECT_EQ(bitmap.Cardinality(), reference.size());
  for (int i = 0; i < 5000; i++) {
    u32 v = static_cast<u32>(rng.NextBounded(1u << 18));
    EXPECT_EQ(bitmap.Contains(v), reference.count(v) > 0) << "value " << v;
  }
}

TEST(RoaringTest, OutOfOrderAddsIntoRunContainerStaySorted) {
  // Regression: Add() into a RunOptimize()d container used to append a
  // fresh run at the end regardless of position, corrupting the sorted
  // order that Contains() binary-searches and ForEach() iterates. The
  // predicate engine hits this when patching exception positions into a
  // run-compressed selection (Frequency blocks).
  RoaringBitmap bitmap;
  for (u32 v = 0; v < 10000; v++) {
    if (v % 97 != 0) bitmap.Add(v);  // gaps at multiples of 97
  }
  bitmap.RunOptimize();

  std::set<u32> reference;
  for (u32 v = 0; v < 10000; v++) {
    if (v % 97 != 0) reference.insert(v);
  }
  // Fill some gaps back in descending order — the non-append path.
  Random rng(13);
  for (int i = 0; i < 60; i++) {
    u32 v = static_cast<u32>(rng.NextBounded(10000 / 97)) * 97;
    bitmap.Add(v);
    reference.insert(v);
    bitmap.Add(v);  // idempotent re-add
  }
  EXPECT_EQ(bitmap.Cardinality(), reference.size());
  EXPECT_EQ(bitmap.ToVector(), std::vector<u32>(reference.begin(),
                                                reference.end()));
  for (u32 v = 0; v < 10000; v++) {
    EXPECT_EQ(bitmap.Contains(v), reference.count(v) > 0) << "value " << v;
  }
}

}  // namespace
}  // namespace btr
