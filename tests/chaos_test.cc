// Chaos harness for the scan path (docs/ROBUSTNESS.md).
//
// Hundreds of seeded fault schedules are thrown at btr::Scanner and every
// single scan must end in exactly one of two ways:
//   1. Status::Ok with output bit-identical to the fault-free scan, or
//   2. a well-typed non-OK Status (Corruption / Unavailable / Throttled).
// Never a crash, never a hang (ctest timeout), never a silently wrong
// answer — that last one is what the per-block CRC32C exists for.
//
// Schedules are deterministic per seed (s3sim/fault.h), so any failure
// here reproduces bit-for-bit from the seed in the assertion message.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btr/btrblocks.h"
#include "btr/scanner.h"
#include "obs/metrics.h"
#include "s3sim/fault.h"
#include "s3sim/object_store.h"

namespace btr {
namespace {

// 1 full block + a short one: enough for per-block faults to matter while
// keeping a few hundred scans fast.
constexpr u32 kRows = kBlockCapacity + 500;

Relation MakeTable() {
  Relation table("chaos_table");
  Column& ints = table.AddColumn("id", ColumnType::kInteger);
  Column& doubles = table.AddColumn("price", ColumnType::kDouble);
  Column& strings = table.AddColumn("city", ColumnType::kString);
  const char* cities[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < kRows; i++) {
    if (i % 97 == 13) {
      ints.AppendNull();
    } else {
      ints.AppendInt(static_cast<i32>(i % 1000));
    }
    doubles.AppendDouble(static_cast<double>(i % 512) * 0.5);
    strings.AppendString(cities[i % 4]);
  }
  return table;
}

// Retry knobs tuned for test speed: microsecond backoffs, generous
// attempt count so a ≤15% fault rate essentially never exhausts them.
ScanSpec ChaosSpec() {
  ScanSpec spec;
  spec.config.scan_threads = 4;
  spec.config.fetch_threads = 3;
  spec.config.prefetch_depth = 4;
  spec.config.max_attempts = 8;
  spec.config.initial_backoff_ns = 1000;   // 1 us
  spec.config.max_backoff_ns = 8000;       // 8 us
  spec.config.retry_budget = 1024;
  return spec;
}

void ExpectBlocksBitIdentical(const DecodedBlock& expected,
                              const DecodedBlock& actual, u64 seed) {
  ASSERT_EQ(expected.type, actual.type) << "seed " << seed;
  ASSERT_EQ(expected.count, actual.count) << "seed " << seed;
  EXPECT_EQ(expected.null_flags, actual.null_flags) << "seed " << seed;
  switch (expected.type) {
    case ColumnType::kInteger:
      EXPECT_EQ(expected.ints, actual.ints) << "seed " << seed;
      break;
    case ColumnType::kDouble:
      ASSERT_EQ(expected.doubles.size(), actual.doubles.size());
      EXPECT_EQ(0, std::memcmp(expected.doubles.data(), actual.doubles.data(),
                               expected.doubles.size() * sizeof(double)))
          << "seed " << seed;
      break;
    case ColumnType::kString:
      ASSERT_EQ(expected.strings.slots.size(), actual.strings.slots.size());
      for (u32 i = 0; i < expected.count; i++) {
        ASSERT_EQ(expected.strings.Get(i), actual.strings.Get(i))
            << "seed " << seed << " row " << i;
      }
      break;
  }
}

void ExpectOutputsBitIdentical(const ScanOutput& expected,
                               const ScanOutput& actual, u64 seed) {
  ASSERT_EQ(expected.columns.size(), actual.columns.size()) << "seed " << seed;
  for (size_t c = 0; c < expected.columns.size(); c++) {
    ASSERT_EQ(expected.columns[c].blocks.size(),
              actual.columns[c].blocks.size());
    for (size_t b = 0; b < expected.columns[c].blocks.size(); b++) {
      ExpectBlocksBitIdentical(expected.columns[c].blocks[b],
                               actual.columns[c].blocks[b], seed);
    }
  }
}

struct Fixture {
  CompressionConfig config;
  Relation table = MakeTable();
  CompressedRelation compressed;
  TableZoneMap zones;
  s3sim::ObjectStore store;
  ScanOutput reference;  // fault-free scan of the full projection

  Fixture() {
    compressed = CompressRelation(table, config);
    for (const Column& column : table.columns()) {
      zones.columns.push_back(ComputeColumnZoneMap(column));
    }
    Status status =
        UploadCompressedRelation(compressed, &zones, "lake/", &store);
    EXPECT_TRUE(status.ok()) << status.ToString();

    Scanner scanner(&store, "chaos_table", "lake/");
    EXPECT_TRUE(scanner.Open().ok());
    status = scanner.Scan(ChaosSpec(), &reference);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
};

// Transient-only chaos (throttles, unavailabilities, latency spikes):
// every scan must succeed and be bit-identical — retries make the faults
// invisible except in the stats.
TEST(ChaosTest, TransientFaultsRetryToBitIdenticalResults) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  u64 total_faults = 0;
  for (u64 seed = 1; seed <= 60; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeTransientPlan(seed, 0.10));
    ScanOutput output;
    Status status = scanner.Scan(ChaosSpec(), &output);
    ASSERT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
    ExpectOutputsBitIdentical(f.reference, output, seed);
    // Failed GETs were retried; latency faults needed no retry.
    EXPECT_LE(output.stats.retries, f.store.faults_injected())
        << "seed " << seed;
    total_faults += f.store.faults_injected();
  }
  f.store.ClearFaultPlan();
  EXPECT_GT(total_faults, 0u) << "a 10% plan over 60 scans must inject";
}

// Full chaos including truncation and bit flips, strict (fail-fast) mode:
// each scan is either bit-identical or a well-typed error — corruption is
// *detected* (CRC), transients that outlive the retry budget surface as
// their transient code. Nothing else is acceptable.
TEST(ChaosTest, FullChaosEitherBitIdenticalOrTypedStatus) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  u32 ok_scans = 0, failed_scans = 0;
  for (u64 seed = 1; seed <= 100; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeChaosPlan(seed, 0.15, true));
    ScanOutput output;
    Status status = scanner.Scan(ChaosSpec(), &output);
    if (status.ok()) {
      ok_scans++;
      ExpectOutputsBitIdentical(f.reference, output, seed);
    } else {
      failed_scans++;
      EXPECT_TRUE(status.IsCorruption() || status.IsTransient())
          << "seed " << seed << " produced an untyped failure: "
          << status.ToString();
    }
  }
  f.store.ClearFaultPlan();
  // A 15% rate with corruption must exercise both endings.
  EXPECT_GT(ok_scans, 0u);
  EXPECT_GT(failed_scans, 0u);
}

// Degraded mode: the scan itself succeeds, unreadable blocks are skipped
// and reported, and every block that *was* decoded is bit-identical.
TEST(ChaosTest, DegradedModeSkipsAndReportsUnreadableBlocks) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  u32 unreadable_total = 0;
  for (u64 seed = 1; seed <= 40; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeChaosPlan(seed, 0.25, true));
    ScanSpec spec = ChaosSpec();
    spec.config.skip_unreadable_blocks = true;
    spec.config.max_attempts = 2;  // force some permanent failures
    ScanOutput output;
    Status status = scanner.Scan(spec, &output);
    ASSERT_TRUE(status.ok())
        << "degraded scan must not fail, seed " << seed << ": "
        << status.ToString();
    EXPECT_EQ(output.stats.blocks_decoded + output.stats.blocks_unreadable,
              output.stats.row_blocks)
        << "seed " << seed;
    ASSERT_EQ(output.stats.unreadable_blocks.size(),
              output.stats.blocks_unreadable);
    ASSERT_EQ(output.stats.unreadable_reasons.size(),
              output.stats.blocks_unreadable);
    for (size_t i = 0; i < output.stats.unreadable_blocks.size(); i++) {
      u32 b = output.stats.unreadable_blocks[i];
      EXPECT_EQ(output.block_outcomes[b], BlockOutcome::kUnreadable);
      EXPECT_FALSE(output.stats.unreadable_reasons[i].ok());
      unreadable_total++;
    }
    for (u32 b = 0; b < output.stats.row_blocks; b++) {
      if (output.block_outcomes[b] != BlockOutcome::kDecoded) continue;
      for (size_t c = 0; c < output.columns.size(); c++) {
        ExpectBlocksBitIdentical(f.reference.columns[c].blocks[b],
                                 output.columns[c].blocks[b], seed);
      }
    }
  }
  f.store.ClearFaultPlan();
  EXPECT_GT(unreadable_total, 0u)
      << "25% chaos at 2 attempts must make some blocks unreadable";
}

// Chaos under a predicate scan: pruned blocks are never fetched (zone
// maps), and the surviving blocks still come back right or typed.
TEST(ChaosTest, PredicateScansSurviveTransientChaos) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ChaosSpec();
  spec.columns = {"id", "city"};
  spec.predicates.push_back(Predicate::EqualsString("city", "bonn"));
  ScanOutput expected;
  ASSERT_TRUE(scanner.Scan(spec, &expected).ok());

  for (u64 seed = 1; seed <= 20; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeTransientPlan(seed, 0.10));
    ScanOutput output;
    Status status = scanner.Scan(spec, &output);
    ASSERT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
    EXPECT_EQ(output.stats.rows_matched, expected.stats.rows_matched);
    ExpectOutputsBitIdentical(expected, output, seed);
  }
  f.store.ClearFaultPlan();
}

// Chaos under a composable range predicate: a BETWEEN + IN expression
// evaluated on the compressed form must reach the same rows as the
// fault-free scan and as the decode-then-filter engine, fault plan or not.
TEST(ChaosTest, RangePredicateScansSurviveTransientChaos) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ChaosSpec();
  spec.columns = {"id", "price"};
  spec.filter = PredicateExpr::And(
      Predicate::BetweenInt("id", 100, 299),
      PredicateExpr::Or(Predicate::InString("city", {"bonn", "munich"}),
                        Predicate::CompareDouble("price", CompareOp::kLt,
                                                 10.0)));
  ScanOutput expected;
  ASSERT_TRUE(scanner.Scan(spec, &expected).ok());
  EXPECT_GT(expected.stats.rows_matched, 0u);

  // The decode-then-filter baseline agrees on the matched row count.
  ScanSpec baseline = spec;
  baseline.config.enable_predicate_pushdown = false;
  ScanOutput unpushed;
  ASSERT_TRUE(scanner.Scan(baseline, &unpushed).ok());
  EXPECT_EQ(unpushed.stats.rows_matched, expected.stats.rows_matched);

  for (u64 seed = 1; seed <= 20; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeTransientPlan(seed, 0.10));
    ScanOutput output;
    Status status = scanner.Scan(spec, &output);
    ASSERT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
    EXPECT_EQ(output.stats.rows_matched, expected.stats.rows_matched)
        << "seed " << seed;
    ExpectOutputsBitIdentical(expected, output, seed);
  }
  f.store.ClearFaultPlan();
}

// Open() under chaos: metadata, header and zone-map GETs retry transients
// and detect corruption exactly like block GETs.
TEST(ChaosTest, OpenUnderChaosIsTypedOrSucceeds) {
  Fixture f;
  for (u64 seed = 1; seed <= 20; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeChaosPlan(seed, 0.20, true));
    Scanner scanner(&f.store, "chaos_table", "lake/");
    ScanConfig config = ChaosSpec().config;
    Status status = scanner.Open(config);
    if (!status.ok()) {
      EXPECT_TRUE(status.IsCorruption() || status.IsTransient())
          << "seed " << seed << ": " << status.ToString();
      continue;
    }
    // An Open that succeeded parsed CRC-clean headers; the scan must work
    // once faults stop.
    f.store.ClearFaultPlan();
    ScanOutput output;
    ASSERT_TRUE(scanner.Scan(ChaosSpec(), &output).ok()) << "seed " << seed;
    ExpectOutputsBitIdentical(f.reference, output, seed);
  }
  f.store.ClearFaultPlan();
}

// Targeted schedule: "the 2nd GET of column 0" throttles once. Fail-fast
// config turns that into Status::Throttled; the default retrying config
// absorbs it. Single fetch thread keeps the GET order deterministic.
TEST(ChaosTest, TargetedThrottleFailsFastOrRetries) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  s3sim::FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back(s3sim::FaultRule::Throttle(".0.btr", 2));

  ScanSpec fail_fast = ChaosSpec();
  fail_fast.config.fetch_threads = 1;
  fail_fast.config.max_attempts = 1;
  f.store.InstallFaultPlan(plan);
  ScanOutput output;
  Status status = scanner.Scan(fail_fast, &output);
  EXPECT_TRUE(status.IsThrottled()) << status.ToString();

  ScanSpec retrying = fail_fast;
  retrying.config.max_attempts = 4;
  f.store.InstallFaultPlan(plan);
  status = scanner.Scan(retrying, &output);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectOutputsBitIdentical(f.reference, output, 5);
  EXPECT_EQ(output.stats.retries, 1u);
  EXPECT_EQ(f.store.faults_injected(), 1u);
  f.store.ClearFaultPlan();
}

// The driver-level agreement check: under a purely transient plan every
// injected fault is one failed GET, and every failed GET costs exactly one
// granted retry — so scan.retries must equal s3.get.faults_injected (both
// the obs counters and the per-scan stats).
TEST(ChaosTest, RetryMetricsAgreeWithInjectedFaults) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  obs::Registry& registry = obs::Registry::Get();
  registry.ResetAll();
  u64 expected_retries = 0;
  for (u64 seed = 1; seed <= 12; seed++) {
    // Throttle/unavailable only — no latency rule, so "fault" and "failed
    // GET needing a retry" coincide exactly.
    s3sim::FaultPlan plan;
    plan.seed = seed;
    s3sim::FaultRule throttle;
    throttle.kind = s3sim::FaultKind::kThrottle;
    throttle.probability = 0.05;
    plan.rules.push_back(throttle);
    s3sim::FaultRule unavailable;
    unavailable.kind = s3sim::FaultKind::kUnavailable;
    unavailable.probability = 0.05;
    plan.rules.push_back(unavailable);
    f.store.InstallFaultPlan(plan);

    ScanOutput output;
    Status status = scanner.Scan(ChaosSpec(), &output);
    ASSERT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
    ExpectOutputsBitIdentical(f.reference, output, seed);
    EXPECT_EQ(output.stats.retries, f.store.faults_injected())
        << "seed " << seed;
    expected_retries += f.store.faults_injected();
  }
  f.store.ClearFaultPlan();
  EXPECT_GT(expected_retries, 0u);
  EXPECT_EQ(registry.GetCounter("scan.retries").Value(), expected_retries);
  EXPECT_EQ(registry.GetCounter("s3.get.faults_injected").Value(),
            expected_retries);
}

// A warm block cache makes repeat scans immune to chaos: the cold scan
// (fault-free) admits every CRC-verified block, after which warm scans
// issue zero GETs — no GETs, no faults, bit-identical output every time.
TEST(ChaosTest, WarmCacheScanIsBitIdenticalAndGetFreeUnderChaos) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ChaosSpec();
  spec.config.enable_block_cache = true;

  // Cold scan, fault-free: populates the Scanner-owned cache.
  ScanOutput cold;
  ASSERT_TRUE(scanner.Scan(spec, &cold).ok());
  ExpectOutputsBitIdentical(f.reference, cold, 0);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.cache_misses, 6u) << "2 blocks x 3 columns";
  EXPECT_EQ(cold.stats.requests, 6u);

  for (u64 seed = 1; seed <= 25; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeChaosPlan(seed, 0.25, true));
    ScanOutput warm;
    Status status = scanner.Scan(spec, &warm);
    ASSERT_TRUE(status.ok()) << "a warm scan issues no GETs and cannot be "
                                "faulted, seed " << seed << ": "
                             << status.ToString();
    ExpectOutputsBitIdentical(f.reference, warm, seed);
    EXPECT_EQ(warm.stats.requests, 0u)
        << "every block must come from the cache, seed " << seed;
    EXPECT_EQ(warm.stats.cache_hits, 6u) << "seed " << seed;
    EXPECT_EQ(warm.stats.cache_misses, 0u) << "seed " << seed;
    EXPECT_EQ(f.store.faults_injected(), 0u) << "seed " << seed;
  }
  f.store.ClearFaultPlan();
}

// The chaos contract must survive with every resilience feature enabled at
// once: cache + hedging + breaker + CRC re-fetch. Fresh Scanner per seed
// so each scan starts cache-cold and actually exercises the fault plan.
TEST(ChaosTest, FullChaosWithCacheHedgingBreakerKeepsContract) {
  Fixture f;
  u32 ok_scans = 0;
  for (u64 seed = 1; seed <= 60; seed++) {
    Scanner scanner(&f.store, "chaos_table", "lake/");
    ASSERT_TRUE(scanner.Open().ok());
    f.store.InstallFaultPlan(s3sim::MakeChaosPlan(seed, 0.15, true));

    ScanSpec spec = ChaosSpec();
    spec.config.enable_block_cache = true;
    spec.config.enable_hedged_gets = true;
    spec.config.hedge_quantile = 0.9;
    spec.config.hedge_min_samples = 4;
    spec.config.hedge_min_threshold_ns = 1000;  // 1 us
    spec.config.hedge_budget = 8;
    spec.config.enable_circuit_breaker = true;
    spec.config.breaker_window = 16;
    spec.config.breaker_min_samples = 8;
    spec.config.breaker_failure_threshold = 0.8;
    spec.config.breaker_cooldown_ns = 100 * 1000;  // 100 us
    spec.config.refetch_on_crc_failure = true;

    ScanOutput output;
    Status status = scanner.Scan(spec, &output);
    if (status.ok()) {
      ok_scans++;
      ExpectOutputsBitIdentical(f.reference, output, seed);
    } else {
      EXPECT_TRUE(status.IsCorruption() || status.IsTransient())
          << "seed " << seed << " produced an untyped failure: "
          << status.ToString();
    }
    EXPECT_LE(output.stats.hedge_wins, output.stats.hedges) << "seed " << seed;
    EXPECT_LE(output.stats.hedges, spec.config.hedge_budget) << "seed " << seed;
    EXPECT_LE(output.stats.crc_rescues, output.stats.crc_refetches)
        << "seed " << seed;
    f.store.ClearFaultPlan();
  }
  // Re-fetch rescues wire corruption and retries absorb transients, so a
  // healthy majority must succeed bit-identically.
  EXPECT_GT(ok_scans, 30u);
}

// A single bit flipped on the wire is transient: the CRC check catches it
// and one cache-bypassing re-fetch returns the true bytes — the scan
// completes bit-identically instead of failing with Corruption.
TEST(ChaosTest, SingleFlipWireCorruptionRescuedByRefetch) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  // Targeted: the first block GET of column 0 after Open arrives corrupt,
  // exactly once (targeted rules disarm after firing) — so the re-fetch of
  // the same range gets clean bytes.
  s3sim::FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(s3sim::FaultRule::Corrupt(".0.btr", 1));

  ScanSpec rescue = ChaosSpec();
  rescue.config.fetch_threads = 1;  // deterministic GET order
  rescue.config.refetch_on_crc_failure = true;
  f.store.InstallFaultPlan(plan);
  ScanOutput output;
  Status status = scanner.Scan(rescue, &output);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectOutputsBitIdentical(f.reference, output, 7);
  EXPECT_EQ(output.stats.crc_refetches, 1u);
  EXPECT_EQ(output.stats.crc_rescues, 1u);
  EXPECT_EQ(f.store.faults_injected(), 1u);

  // Same schedule without the re-fetch: the flip is a typed Corruption.
  ScanSpec strict = rescue;
  strict.config.refetch_on_crc_failure = false;
  f.store.InstallFaultPlan(plan);
  status = scanner.Scan(strict, &output);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  f.store.ClearFaultPlan();
}

// A backend that is fully down trips the breaker: later GETs fail fast
// (Status::Unavailable, no retry budget burned waiting out backoffs). In
// degraded mode the scan itself completes with every block reported
// unreadable; in strict mode it fails with a transient typed Status.
TEST(ChaosTest, BreakerTripsAndFailsFastWhenBackendIsDown) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  s3sim::FaultPlan down;
  down.seed = 11;
  s3sim::FaultRule unavailable;
  unavailable.kind = s3sim::FaultKind::kUnavailable;
  unavailable.probability = 1.0;  // every GET fails
  down.rules.push_back(unavailable);

  ScanSpec spec = ChaosSpec();
  spec.config.skip_unreadable_blocks = true;
  spec.config.max_attempts = 2;
  spec.config.enable_circuit_breaker = true;
  spec.config.breaker_window = 8;
  spec.config.breaker_min_samples = 4;
  spec.config.breaker_failure_threshold = 0.5;
  spec.config.breaker_cooldown_ns = 50ull * 1000 * 1000;  // outlives the scan

  f.store.InstallFaultPlan(down);
  ScanOutput output;
  Status status = scanner.Scan(spec, &output);
  ASSERT_TRUE(status.ok()) << "degraded scan must complete: "
                           << status.ToString();
  EXPECT_EQ(output.stats.blocks_unreadable, output.stats.row_blocks);
  EXPECT_GE(output.stats.breaker_trips, 1u)
      << "4+ consecutive failures must trip the breaker";
  EXPECT_GE(output.stats.breaker_fast_failures, 1u)
      << "requests after the trip must fail fast";
  for (const Status& reason : output.stats.unreadable_reasons) {
    EXPECT_TRUE(reason.IsTransient()) << reason.ToString();
  }

  // Strict mode: the scan fails, and the failure keeps its transient type
  // whether it came from the backend or from a breaker fast-fail.
  ScanSpec strict = spec;
  strict.config.skip_unreadable_blocks = false;
  f.store.InstallFaultPlan(down);
  status = scanner.Scan(strict, &output);
  EXPECT_TRUE(status.IsTransient()) << status.ToString();
  f.store.ClearFaultPlan();
}

// Hedged GETs absorb latency spikes: with a spiky (but never failing)
// plan, scans stay bit-identical and the duplicate requests show up in the
// stats once the latency quantile arms.
TEST(ChaosTest, HedgedGetsAbsorbLatencySpikes) {
  Fixture f;
  Scanner scanner(&f.store, "chaos_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  u64 total_hedges = 0, total_wins = 0;
  for (u64 seed = 1; seed <= 20; seed++) {
    s3sim::FaultPlan spiky;
    spiky.seed = seed;
    s3sim::FaultRule spike;
    spike.kind = s3sim::FaultKind::kLatency;
    spike.probability = 0.3;
    spike.latency_ns = 3 * 1000 * 1000;  // 3 ms against ~us base latency
    spiky.rules.push_back(spike);
    f.store.InstallFaultPlan(spiky);

    ScanSpec spec = ChaosSpec();
    spec.config.enable_hedged_gets = true;
    spec.config.hedge_quantile = 0.5;
    spec.config.hedge_min_samples = 2;
    spec.config.hedge_min_threshold_ns = 1000;  // 1 us
    spec.config.hedge_budget = 16;

    ScanOutput output;
    Status status = scanner.Scan(spec, &output);
    ASSERT_TRUE(status.ok())
        << "latency never fails a GET, seed " << seed << ": "
        << status.ToString();
    ExpectOutputsBitIdentical(f.reference, output, seed);
    EXPECT_LE(output.stats.hedges, spec.config.hedge_budget) << "seed " << seed;
    EXPECT_LE(output.stats.hedge_wins, output.stats.hedges) << "seed " << seed;
    total_hedges += output.stats.hedges;
    total_wins += output.stats.hedge_wins;
  }
  f.store.ClearFaultPlan();
  EXPECT_GT(total_hedges, 0u)
      << "3 ms spikes at 30% over 20 scans must trigger hedges";
  EXPECT_GT(total_wins, 0u)
      << "an instant duplicate should beat a 3 ms straggler sometimes";
}

}  // namespace
}  // namespace btr
