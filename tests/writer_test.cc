// Crash-safe streaming write path: the streamed bytes must be
// bit-identical to the one-shot upload, commits must be atomic
// (either-old-or-new under every crash point and fault schedule), and
// write::Fsck must converge the store — resuming interrupted multipart
// uploads, GC'ing orphans — and be idempotent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "btr/scanner.h"
#include "s3sim/fault.h"
#include "write/intent.h"
#include "write/manifest.h"
#include "write/recovery.h"
#include "write/streaming_writer.h"

namespace btr {
namespace {

// One full block plus a short tail so the streamed table cuts blocks at
// exactly kBlockCapacity regardless of chunk boundaries.
constexpr u32 kRows = kBlockCapacity + 30000;

Relation MakeTable(const std::string& name, u32 rows) {
  Relation table(name);
  Column& ints = table.AddColumn("id", ColumnType::kInteger);
  Column& doubles = table.AddColumn("price", ColumnType::kDouble);
  Column& strings = table.AddColumn("city", ColumnType::kString);
  const char* cities[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < rows; i++) {
    if (i % 97 == 13) {
      ints.AppendNull();
    } else {
      ints.AppendInt(static_cast<i32>(i / kBlockCapacity * 1000 + i % 1000));
    }
    if (i % 101 == 7) {
      doubles.AppendNull();
    } else {
      doubles.AppendDouble(static_cast<double>(i % 4096) * 0.25);
    }
    if (i % 89 == 3) {
      strings.AppendNull();
    } else {
      strings.AppendString(cities[i % 4]);
    }
  }
  return table;
}

Relation SliceRows(const Relation& table, u32 begin, u32 count) {
  Relation chunk(table.name());
  for (const Column& src : table.columns()) {
    Column& dst = chunk.AddColumn(src.name(), src.type());
    for (u32 r = begin; r < begin + count; r++) {
      if (src.IsNull(r)) {
        dst.AppendNull();
        continue;
      }
      switch (src.type()) {
        case ColumnType::kInteger: dst.AppendInt(src.ints()[r]); break;
        case ColumnType::kDouble: dst.AppendDouble(src.doubles()[r]); break;
        case ColumnType::kString: dst.AppendString(src.GetString(r)); break;
      }
    }
  }
  return chunk;
}

std::vector<write::StreamingWriter::ColumnSpec> SchemaOf(
    const Relation& table) {
  std::vector<write::StreamingWriter::ColumnSpec> schema;
  for (const Column& column : table.columns()) {
    schema.push_back({column.name(), column.type()});
  }
  return schema;
}

TableZoneMap ZonesOf(const Relation& table) {
  TableZoneMap zones;
  for (const Column& column : table.columns()) {
    zones.columns.push_back(ComputeColumnZoneMap(column));
  }
  return zones;
}

// Streams `table` through a StreamingWriter in `chunk_rows`-row appends.
Status StreamTable(s3sim::ObjectStore* store, const Relation& table,
                   u32 chunk_rows, write::WriterConfig config,
                   u64* version_out = nullptr) {
  write::StreamingWriter writer(store, table.name(), "lake/",
                                std::move(config));
  Status status = writer.Begin(SchemaOf(table));
  for (u32 begin = 0; status.ok() && begin < table.row_count();
       begin += chunk_rows) {
    u32 n = std::min(chunk_rows, table.row_count() - begin);
    status = writer.Append(SliceRows(table, begin, n));
  }
  if (status.ok()) status = writer.Commit();
  if (version_out != nullptr) *version_out = writer.version();
  return status;
}

// Full-table scan; returns emitted row count (column 0's chunks).
Status ScanRows(s3sim::ObjectStore* store, const std::string& table,
                u64* rows_out) {
  Scanner scanner(store, table, "lake/");
  BTR_RETURN_IF_ERROR(scanner.Open());
  u64 rows = 0;
  BTR_RETURN_IF_ERROR(scanner.Scan(ScanSpec(), [&](ColumnChunk&& chunk) {
    if (chunk.column == 0) rows += chunk.row_count;
  }));
  *rows_out = rows;
  return Status::Ok();
}

// Staged versioned keys above the committed version plus any open
// multipart upload — after fsck --repair this must be zero.
u32 CountStray(s3sim::ObjectStore& store, const std::string& table,
               u64 committed) {
  u32 stray = 0;
  for (const std::string& key : store.ListKeys("lake/" + table + ".v")) {
    u64 version = 0;
    if (write::ParseVersionedKey(key, "lake/", table, &version) &&
        version > committed) {
      stray++;
    }
  }
  stray += static_cast<u32>(
      store.ListMultipartUploads("lake/" + table + ".v").size());
  return stray;
}

std::vector<u8> MustGet(s3sim::ObjectStore& store, const std::string& key) {
  std::vector<u8> blob;
  Status status = store.GetObject(key, &blob);
  EXPECT_TRUE(status.ok()) << key << ": " << status.ToString();
  return blob;
}

void ExpectObjectEquals(s3sim::ObjectStore& store, const std::string& key,
                        const ByteBuffer& expected) {
  std::vector<u8> blob = MustGet(store, key);
  ASSERT_EQ(blob.size(), expected.size()) << key;
  EXPECT_EQ(std::memcmp(blob.data(), expected.data(), blob.size()), 0)
      << key << " bytes differ";
}

// --- bit identity -----------------------------------------------------------

TEST(StreamingWriterTest, StreamedObjectsBitIdenticalToOneShot) {
  Relation table = MakeTable("t", kRows);
  CompressionConfig config;
  CompressedRelation one_shot = CompressRelation(table, config);
  TableZoneMap zones = ZonesOf(table);

  s3sim::ObjectStore store;
  write::WriterConfig writer_config;
  writer_config.part_target_bytes = 64 * 1024;  // force several parts
  u64 version = 0;
  // Chunk size deliberately coprime with kBlockCapacity: block cuts land
  // mid-chunk and chunk boundaries land mid-block.
  Status status = StreamTable(&store, table, 9999, writer_config, &version);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(version, 1u);

  std::string resolved;
  ASSERT_TRUE(write::ResolveCommittedName(&store, "lake/", "t", &resolved).ok());
  EXPECT_EQ(resolved, "t.v1");

  ByteBuffer expected;
  SerializeTableMeta(one_shot, &expected);
  ExpectObjectEquals(store, TableMetaKey("lake/", resolved), expected);
  for (size_t c = 0; c < one_shot.columns.size(); c++) {
    expected.Clear();
    SerializeColumnFile(one_shot.columns[c], &expected);
    ExpectObjectEquals(store, ColumnFileKey("lake/", resolved, c), expected);
  }
  expected.Clear();
  SerializeTableZoneMap(zones, &expected);
  ExpectObjectEquals(store, ZoneMapKey("lake/", resolved), expected);

  // No intent, no open uploads, nothing stray after a clean commit.
  EXPECT_FALSE(store.Contains(write::IntentKey("lake/", "t", 1)));
  EXPECT_EQ(CountStray(store, "t", 1), 0u);

  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, kRows);
}

TEST(StreamingWriterTest, CommitCompressedRelationMatchesStreamedBytes) {
  Relation table = MakeTable("t", kRows);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(table, config);
  TableZoneMap zones = ZonesOf(table);

  s3sim::ObjectStore a, b;
  ASSERT_TRUE(
      write::CommitCompressedRelation(compressed, &zones, "lake/", &a).ok());
  ASSERT_TRUE(StreamTable(&b, table, 7777, write::WriterConfig()).ok());
  for (const std::string& key : a.ListKeys("lake/")) {
    std::vector<u8> from_a = MustGet(a, key);
    std::vector<u8> from_b = MustGet(b, key);
    EXPECT_EQ(from_a, from_b) << key;
  }
}

// --- writer API contract ----------------------------------------------------

TEST(StreamingWriterTest, SchemaMismatchAndStateErrorsAreStatuses) {
  s3sim::ObjectStore store;
  Relation table = MakeTable("t", 100);
  write::StreamingWriter writer(&store, "t", "lake/");
  EXPECT_TRUE(writer.Append(table).IsInvalidArgument());  // before Begin
  ASSERT_TRUE(writer.Begin(SchemaOf(table)).ok());
  EXPECT_TRUE(writer.Begin(SchemaOf(table)).IsInvalidArgument());

  Relation wrong("t");
  wrong.AddColumn("id", ColumnType::kString);  // wrong type
  wrong.AddColumn("price", ColumnType::kDouble);
  wrong.AddColumn("city", ColumnType::kString);
  EXPECT_TRUE(writer.Append(wrong).IsInvalidArgument());

  ASSERT_TRUE(writer.Append(table).ok());
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_TRUE(writer.Append(table).IsInvalidArgument());  // after Commit
  EXPECT_TRUE(writer.Commit().IsInvalidArgument());
  EXPECT_TRUE(writer.Abort().IsInvalidArgument());
}

TEST(StreamingWriterTest, AbortLeavesOldVersionAndFsckCleansUp) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, SliceRows(table, 0, 40000), 9000,
                          write::WriterConfig())
                  .ok());

  write::StreamingWriter writer(&store, "t", "lake/");
  ASSERT_TRUE(writer.Begin(SchemaOf(table)).ok());
  ASSERT_TRUE(writer.Append(SliceRows(table, 0, 50000)).ok());
  ASSERT_TRUE(writer.Abort().ok());
  // Abandoned state is a crash by design: staged garbage exists until
  // recovery runs.
  write::FsckOptions repair;
  repair.repair = true;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
  EXPECT_EQ(report.committed_version_after, 1u);
  EXPECT_EQ(CountStray(store, "t", 1), 0u);
  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, 40000u);
}

// --- fault injection --------------------------------------------------------

TEST(StreamingWriterTest, TransientPutFaultsAreRetried) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  s3sim::FaultPlan plan;
  plan.seed = 3;
  // Throttle the first intent PUT and the first part upload of column 0.
  plan.rules.push_back(s3sim::FaultRule::PutThrottle(".intent", 1));
  plan.rules.push_back(s3sim::FaultRule::PutUnavailable(".0.btr", 1));
  store.InstallFaultPlan(plan);
  write::WriterConfig config;
  config.part_target_bytes = 16 * 1024;
  Status status = StreamTable(&store, table, 20000, config);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(store.faults_injected(), 2u);
  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, kRows);
}

TEST(StreamingWriterTest, PartialPartIsRetriedAndReplaced) {
  Relation table = MakeTable("t", kRows);
  CompressionConfig cc;
  CompressedRelation one_shot = CompressRelation(table, cc);
  s3sim::ObjectStore store;
  s3sim::FaultPlan plan;
  plan.seed = 5;
  // First part PUT of column 1 stores a 7-byte prefix and reports
  // Unavailable; the retry must *replace* the damaged part, leaving the
  // assembled object bit-identical.
  plan.rules.push_back(s3sim::FaultRule::PutPartialPart(".1.btr", 1, 7));
  store.InstallFaultPlan(plan);
  write::WriterConfig config;
  config.part_target_bytes = 16 * 1024;
  ASSERT_TRUE(StreamTable(&store, table, 20000, config).ok());
  EXPECT_EQ(store.faults_injected(), 1u);

  ByteBuffer expected;
  SerializeColumnFile(one_shot.columns[1], &expected);
  ExpectObjectEquals(store, ColumnFileKey("lake/", "t.v1", 1), expected);
}

TEST(StreamingWriterTest, TornAckedPutIsCaughtBeforeManifestSwap) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, SliceRows(table, 0, 40000), 9000,
                          write::WriterConfig())
                  .ok());

  // The metadata PUT of v2 silently stores an 8-byte prefix while
  // reporting success — undetectable by retries, caught only by the
  // verify-before-commit read-back.
  s3sim::FaultPlan plan;
  plan.seed = 9;
  plan.rules.push_back(s3sim::FaultRule::PutTornWrite(".v2.btrmeta", 1, 8));
  store.InstallFaultPlan(plan);
  Status status = StreamTable(&store, table, 20000, write::WriterConfig());
  store.ClearFaultPlan();
  ASSERT_TRUE(status.IsCorruption()) << status.ToString();

  // The manifest still points at v1; fsck GCs the damaged version.
  write::FsckOptions repair;
  repair.repair = true;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
  EXPECT_EQ(report.committed_version_after, 1u);
  EXPECT_EQ(CountStray(store, "t", 1), 0u);
  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, 40000u);
}

TEST(StreamingWriterTest, CorruptAckedPutIsCaughtBeforeManifestSwap) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  s3sim::FaultPlan plan;
  plan.seed = 13;
  plan.rules.push_back(s3sim::FaultRule::PutCorrupt(".zones", 1, 3));
  store.InstallFaultPlan(plan);
  Status status = StreamTable(&store, table, 20000, write::WriterConfig());
  store.ClearFaultPlan();
  ASSERT_TRUE(status.IsCorruption()) << status.ToString();
  // Nothing was ever published.
  Scanner scanner(&store, "t", "lake/");
  EXPECT_TRUE(scanner.Open().IsNotFound());
}

// --- atomicity --------------------------------------------------------------

TEST(StreamingWriterTest, OpenScannerKeepsOldVersionAcrossCommit) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, SliceRows(table, 0, 40000), 9000,
                          write::WriterConfig())
                  .ok());

  Scanner old_reader(&store, "t", "lake/");
  ASSERT_TRUE(old_reader.Open().ok());
  EXPECT_EQ(old_reader.resolved_name(), "t.v1");

  ASSERT_TRUE(StreamTable(&store, table, 20000, write::WriterConfig()).ok());

  // The already-open scanner still reads v1, in full.
  u64 rows = 0;
  ASSERT_TRUE(old_reader
                  .Scan(ScanSpec(),
                        [&](ColumnChunk&& chunk) {
                          if (chunk.column == 0) rows += chunk.row_count;
                        })
                  .ok());
  EXPECT_EQ(rows, 40000u);
  EXPECT_EQ(old_reader.meta().row_count, 40000u);

  // A fresh Open resolves v2.
  Scanner new_reader(&store, "t", "lake/");
  ASSERT_TRUE(new_reader.Open().ok());
  EXPECT_EQ(new_reader.resolved_name(), "t.v2");
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, kRows);
}

TEST(StreamingWriterTest, VersionAllocationSkipsCrashedPredecessor) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, SliceRows(table, 0, 40000), 9000,
                          write::WriterConfig())
                  .ok());

  // A writer dies mid-staging of v2 (nothing repaired it yet).
  write::WriterConfig crash_config;
  u32 point = 0;
  crash_config.failpoint = [&](const char*) { return ++point == 8; };
  Status status = StreamTable(&store, table, 20000, crash_config);
  ASSERT_TRUE(status.IsIoError()) << status.ToString();

  // The next writer must not reuse v2 even though v2 never committed.
  u64 version = 0;
  ASSERT_TRUE(
      StreamTable(&store, table, 20000, write::WriterConfig(), &version).ok());
  EXPECT_EQ(version, 3u);
  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, kRows);

  // Recovery afterwards GCs the crashed v2 without touching v1 or v3.
  write::FsckOptions repair;
  repair.repair = true;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
  EXPECT_EQ(report.committed_version_after, 3u);
  EXPECT_EQ(CountStray(store, "t", 3), 0u);
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, kRows);
}

// --- crash matrix -----------------------------------------------------------

// Kill the writer at every crash point in turn; after fsck --repair the
// table must read back as exactly the old or the new version, the store
// must hold zero stray objects/uploads, and a second fsck must find a
// clean store (idempotence).
TEST(WriterCrashMatrixTest, EveryCrashPointConvergesToEitherOldOrNew) {
  Relation full = MakeTable("t", kRows);
  Relation half = SliceRows(full, 0, 40000);
  CompressionConfig cc;
  CompressedRelation chalf = CompressRelation(half, cc);
  CompressedRelation cfull = CompressRelation(full, cc);
  TableZoneMap zhalf = ZonesOf(half);
  TableZoneMap zfull = ZonesOf(full);

  // Pass 1: count the crash points of the second commit.
  u32 points = 0;
  {
    s3sim::ObjectStore store;
    write::WriterConfig config;
    config.part_target_bytes = 8 * 1024;
    ASSERT_TRUE(write::CommitCompressedRelation(chalf, &zhalf, "lake/", &store,
                                                config)
                    .ok());
    config.failpoint = [&](const char*) {
      points++;
      return false;
    };
    ASSERT_TRUE(write::CommitCompressedRelation(cfull, &zfull, "lake/", &store,
                                                config)
                    .ok());
  }
  ASSERT_GT(points, 12u) << "matrix must cover every protocol step";

  // Pass 2: kill at each point.
  for (u32 k = 1; k <= points; k++) {
    SCOPED_TRACE("crash point " + std::to_string(k) + "/" +
                 std::to_string(points));
    s3sim::ObjectStore store;
    write::WriterConfig config;
    config.part_target_bytes = 8 * 1024;
    ASSERT_TRUE(write::CommitCompressedRelation(chalf, &zhalf, "lake/", &store,
                                                config)
                    .ok());
    u32 n = 0;
    config.failpoint = [&](const char*) { return ++n == k; };
    Status crashed = write::CommitCompressedRelation(cfull, &zfull, "lake/",
                                                     &store, config);
    EXPECT_FALSE(crashed.ok()) << "point " << k << " must kill the writer";

    write::FsckOptions repair;
    repair.repair = true;
    repair.verify_committed = true;
    write::FsckReport report;
    ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
    EXPECT_TRUE(report.committed_version_after == 1 ||
                report.committed_version_after == 2);
    EXPECT_EQ(CountStray(store, "t", report.committed_version_after), 0u)
        << "repair must leave zero stray objects";

    // Idempotence: an immediate re-run finds nothing to do.
    write::FsckReport again;
    ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &again).ok());
    EXPECT_TRUE(again.clean) << "fsck must be idempotent";
    EXPECT_EQ(again.committed_version_after, report.committed_version_after);

    u64 rows = 0;
    Status read = ScanRows(&store, "t", &rows);
    ASSERT_TRUE(read.ok()) << read.ToString();
    EXPECT_TRUE(rows == 40000u || rows == kRows)
        << "read back " << rows << " rows — neither old nor new";
    EXPECT_EQ(rows == kRows, report.committed_version_after == 2u);
  }
}

// Chaos-style seeded PUT fault schedules: whatever the schedule does, the
// invariant holds — a successful Commit publishes the new version in
// full; a failed one leaves the old version intact after fsck.
TEST(WriterCrashMatrixTest, SeededPutChaosSchedulesKeepEitherOldOrNew) {
  Relation full = MakeTable("t", kRows);
  Relation half = SliceRows(full, 0, 40000);
  CompressionConfig cc;
  CompressedRelation chalf = CompressRelation(half, cc);
  CompressedRelation cfull = CompressRelation(full, cc);

  for (u64 seed = 1; seed <= 12; seed++) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    s3sim::ObjectStore store;
    write::WriterConfig config;
    config.part_target_bytes = 8 * 1024;
    ASSERT_TRUE(
        write::CommitCompressedRelation(chalf, nullptr, "lake/", &store, config)
            .ok());
    store.InstallFaultPlan(s3sim::MakePutChaosPlan(seed, 0.35));
    Status status = write::CommitCompressedRelation(cfull, nullptr, "lake/",
                                                    &store, config);
    store.ClearFaultPlan();

    write::FsckOptions repair;
    repair.repair = true;
    write::FsckReport report;
    ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
    EXPECT_EQ(CountStray(store, "t", report.committed_version_after), 0u);
    u64 rows = 0;
    ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
    if (status.ok()) {
      EXPECT_EQ(rows, kRows) << "committed write must be fully visible";
    } else {
      EXPECT_TRUE(rows == 40000u || rows == kRows);
    }
  }
}

// --- recovery ---------------------------------------------------------------

TEST(FsckTest, CleanStoreIsANoOp) {
  Relation table = MakeTable("t", 40000);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, table, 9000, write::WriterConfig()).ok());
  u64 puts_before = store.total_put_requests();
  std::vector<std::string> keys_before = store.ListKeys("");

  write::FsckOptions repair;
  repair.repair = true;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.rolled_forward, 0u);
  EXPECT_EQ(report.rolled_back, 0u);
  EXPECT_EQ(report.committed_version_after, 1u);
  EXPECT_EQ(store.total_put_requests(), puts_before) << "no writes on clean";
  EXPECT_EQ(store.ListKeys(""), keys_before) << "no mutations on clean";

  // On a completely empty store it is also a no-op.
  s3sim::ObjectStore empty;
  ASSERT_TRUE(write::Fsck(&empty, "lake/", "t", repair, &report).ok());
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.committed_version_after, 0u);
}

TEST(FsckTest, RollForwardCompletesInterruptedUploads) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  // Kill the writer right after the kStaged intent: all bytes are staged,
  // no multipart upload is completed yet — recovery itself must assemble
  // the objects ("resumable multipart") and publish.
  write::WriterConfig config;
  config.failpoint = [&](const char* label) {
    return std::strcmp(label, "commit:after-staged-intent") == 0;
  };
  Status status = StreamTable(&store, table, 20000, config);
  ASSERT_TRUE(status.IsIoError()) << status.ToString();
  ASSERT_FALSE(store.ListMultipartUploads("lake/").empty());

  // Read-only fsck reports the pending roll-forward but changes nothing.
  write::FsckOptions analyze;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", analyze, &report).ok());
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.rolled_forward, 1u);
  EXPECT_EQ(report.uploads_completed, 0u);
  ASSERT_FALSE(store.ListMultipartUploads("lake/").empty());

  write::FsckOptions repair;
  repair.repair = true;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
  EXPECT_EQ(report.rolled_forward, 1u);
  EXPECT_EQ(report.uploads_completed, 3u);  // one per column
  EXPECT_EQ(report.committed_version_after, 1u);
  EXPECT_EQ(CountStray(store, "t", 1), 0u);
  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, kRows);
}

TEST(FsckTest, DamagedStagedVersionRollsBack) {
  Relation table = MakeTable("t", kRows);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, SliceRows(table, 0, 40000), 9000,
                          write::WriterConfig())
                  .ok());
  // Stage v2 fully (kStaged intent written), then corrupt a staged object
  // behind the writer's back before recovery runs.
  write::WriterConfig config;
  config.failpoint = [&](const char* label) {
    return std::strcmp(label, "commit:after-verify") == 0;
  };
  Status status = StreamTable(&store, table, 20000, config);
  ASSERT_TRUE(status.IsIoError()) << status.ToString();
  std::vector<u8> meta = MustGet(store, TableMetaKey("lake/", "t.v2"));
  meta[meta.size() / 2] ^= 0xFF;
  ASSERT_TRUE(
      store.Put(TableMetaKey("lake/", "t.v2"), meta.data(), meta.size()).ok());

  write::FsckOptions repair;
  repair.repair = true;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", repair, &report).ok());
  EXPECT_GE(report.verify_failures, 1u);
  EXPECT_EQ(report.rolled_back, 1u);
  EXPECT_EQ(report.committed_version_after, 1u) << "damaged v2 must not publish";
  EXPECT_EQ(CountStray(store, "t", 1), 0u);
  u64 rows = 0;
  ASSERT_TRUE(ScanRows(&store, "t", &rows).ok());
  EXPECT_EQ(rows, 40000u);
}

TEST(FsckTest, VerifyCommittedDetectsBitRot) {
  Relation table = MakeTable("t", 40000);
  s3sim::ObjectStore store;
  ASSERT_TRUE(StreamTable(&store, table, 9000, write::WriterConfig()).ok());
  // Flip one payload byte of the committed column 0 object.
  std::string key = ColumnFileKey("lake/", "t.v1", 0);
  std::vector<u8> blob = MustGet(store, key);
  blob[blob.size() - 1] ^= 0x01;
  ASSERT_TRUE(store.Put(key, blob.data(), blob.size()).ok());

  write::FsckOptions deep;
  deep.verify_committed = true;
  write::FsckReport report;
  ASSERT_TRUE(write::Fsck(&store, "lake/", "t", deep, &report).ok());
  EXPECT_GE(report.verify_failures, 1u);
  EXPECT_FALSE(report.clean);
}

}  // namespace
}  // namespace btr
