// FSST substrate tests: symbol-table construction, round trips on
// structured and adversarial inputs, serialization, compression wins.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fsst/fsst.h"
#include "util/random.h"

namespace btr::fsst {
namespace {

std::string RoundTrip(const SymbolTable& table, const std::string& input) {
  std::vector<u8> compressed(2 * input.size() + 16);
  size_t compressed_len = table.Compress(
      reinterpret_cast<const u8*>(input.data()), input.size(), compressed.data());
  EXPECT_EQ(table.DecompressedSize(compressed.data(), compressed_len),
            input.size());
  std::vector<u8> decompressed(input.size() + 8);
  size_t out_len =
      table.Decompress(compressed.data(), compressed_len, decompressed.data());
  return std::string(reinterpret_cast<char*>(decompressed.data()), out_len);
}

TEST(FsstTest, EmptyInput) {
  SymbolTable table = SymbolTable::Build(nullptr, 0);
  EXPECT_EQ(RoundTrip(table, ""), "");
}

TEST(FsstTest, RepetitiveTextCompressesAndRoundTrips) {
  std::string input;
  for (int i = 0; i < 500; i++) {
    input += "http://www.example.com/products/item";
    input += std::to_string(i % 50);
  }
  SymbolTable table =
      SymbolTable::Build(reinterpret_cast<const u8*>(input.data()), input.size());
  EXPECT_GT(table.symbol_count(), 50u);

  std::vector<u8> compressed(2 * input.size() + 16);
  size_t compressed_len = table.Compress(
      reinterpret_cast<const u8*>(input.data()), input.size(), compressed.data());
  // Structured URLs must compress by at least 2x.
  EXPECT_LT(compressed_len, input.size() / 2);
  EXPECT_EQ(RoundTrip(table, input), input);
}

TEST(FsstTest, RandomBytesRoundTrip) {
  // Incompressible data must still round-trip (worst case all escapes).
  Random rng(42);
  std::string input;
  for (int i = 0; i < 5000; i++) {
    input.push_back(static_cast<char>(rng.Next() & 0xFF));
  }
  SymbolTable table =
      SymbolTable::Build(reinterpret_cast<const u8*>(input.data()), input.size());
  EXPECT_EQ(RoundTrip(table, input), input);
}

TEST(FsstTest, InputWithEmbeddedZerosAndEscapeBytes) {
  std::string input;
  for (int i = 0; i < 1000; i++) {
    input.push_back('\0');
    input.push_back('\xff');  // the escape code byte as a literal
    input.push_back('a');
  }
  SymbolTable table =
      SymbolTable::Build(reinterpret_cast<const u8*>(input.data()), input.size());
  EXPECT_EQ(RoundTrip(table, input), input);
}

TEST(FsstTest, TableTrainedOnSampleHandlesUnseenData) {
  std::string sample = "BERLIN,MUNICH,HAMBURG,COLOGNE,";
  SymbolTable table = SymbolTable::Build(
      reinterpret_cast<const u8*>(sample.data()), sample.size());
  // Data with bytes the table never saw must escape, not corrupt.
  std::string unseen = "zurich|vienna|PRAGUE~42";
  EXPECT_EQ(RoundTrip(table, unseen), unseen);
}

TEST(FsstTest, SerializationRoundTrip) {
  std::string input;
  for (int i = 0; i < 300; i++) input += "SIGMOD2023_btrblocks_";
  SymbolTable table =
      SymbolTable::Build(reinterpret_cast<const u8*>(input.data()), input.size());
  ByteBuffer serialized;
  table.SerializeTo(&serialized);
  EXPECT_EQ(serialized.size(), table.SerializedSizeBytes());

  size_t consumed = 0;
  SymbolTable restored = SymbolTable::Deserialize(serialized.data(), &consumed);
  EXPECT_EQ(consumed, serialized.size());
  EXPECT_EQ(restored.symbol_count(), table.symbol_count());

  // The restored table must decode output of the original encoder.
  std::vector<u8> compressed(2 * input.size() + 16);
  size_t compressed_len = table.Compress(
      reinterpret_cast<const u8*>(input.data()), input.size(), compressed.data());
  std::vector<u8> decompressed(input.size() + 8);
  size_t out_len = restored.Decompress(compressed.data(), compressed_len,
                                       decompressed.data());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(decompressed.data()), out_len),
            input);
}

TEST(FsstTest, CompressBlockHelper) {
  std::string input = "aaaaaaaabbbbbbbbaaaaaaaabbbbbbbb";
  SymbolTable table =
      SymbolTable::Build(reinterpret_cast<const u8*>(input.data()), input.size());
  ByteBuffer out;
  size_t written = CompressBlock(
      table, reinterpret_cast<const u8*>(input.data()), input.size(), &out);
  EXPECT_EQ(written, out.size());
  std::vector<u8> decompressed(input.size() + 8);
  size_t n = table.Decompress(out.data(), out.size(), decompressed.data());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(decompressed.data()), n), input);
}

class FsstPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(FsstPropertyTest, RandomStructuredRoundTrip) {
  // Property: any mixture of dictionary words round-trips bit-exactly.
  Random rng(GetParam());
  const char* words[] = {"alpha", "beta", "gamma", "delta-9", "ZZ", "",
                         "longlonglongword", "x"};
  std::string input;
  for (int i = 0; i < 2000; i++) {
    input += words[rng.NextBounded(8)];
    if (rng.NextBounded(4) == 0) input.push_back(',');
  }
  SymbolTable table =
      SymbolTable::Build(reinterpret_cast<const u8*>(input.data()), input.size());
  EXPECT_EQ(RoundTrip(table, input), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsstPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace btr::fsst
