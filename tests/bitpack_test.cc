// Tests for bit packing and the BP128/PFOR codecs: round trips across
// bitwidths, scalar/SIMD equivalence, and outlier (exception) handling.
#include <gtest/gtest.h>

#include <vector>

#include "bitpack/bitpack.h"
#include "util/random.h"
#include "util/simd.h"

namespace btr::bitpack {
namespace {

class PackWidthTest : public ::testing::TestWithParam<u32> {};

TEST_P(PackWidthTest, ContiguousRoundTrip) {
  u32 bits = GetParam();
  Random rng(bits);
  u32 mask = bits == 0 ? 0 : (bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1));
  std::vector<u32> in(777);
  for (u32& v : in) v = static_cast<u32>(rng.Next()) & mask;
  std::vector<u8> packed(PackedBytes(static_cast<u32>(in.size()), bits) + 16);
  PackScalar(in.data(), static_cast<u32>(in.size()), bits, packed.data());
  std::vector<u32> out(in.size());
  UnpackScalar(packed.data(), static_cast<u32>(in.size()), bits, out.data());
  EXPECT_EQ(in, out);
}

TEST_P(PackWidthTest, Vertical128RoundTripScalarAndSimd) {
  u32 bits = GetParam();
  Random rng(bits * 31 + 1);
  u32 mask = bits == 0 ? 0 : (bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1));
  std::vector<u32> in(kBlockSize);
  for (u32& v : in) v = static_cast<u32>(rng.Next()) & mask;
  std::vector<u8> packed(Packed128Bytes(32) + 32, 0);
  Pack128(in.data(), bits, packed.data());

  std::vector<u32> out_scalar(kBlockSize);
  Unpack128Scalar(packed.data(), bits, out_scalar.data());
  EXPECT_EQ(in, out_scalar);

#if BTR_HAS_AVX2
  std::vector<u32> out_simd(kBlockSize + 8);
  Unpack128Avx2(packed.data(), bits, out_simd.data());
  out_simd.resize(kBlockSize);
  EXPECT_EQ(in, out_simd);
#endif
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackWidthTest,
                         ::testing::Range(0u, 33u));

TEST(Bp128Test, RoundTripRandom) {
  Random rng(3);
  for (u32 count : {1u, 7u, 127u, 128u, 129u, 1000u, 64000u}) {
    std::vector<i32> in(count);
    for (i32& v : in) v = static_cast<i32>(rng.Next());
    ByteBuffer compressed;
    size_t written = Bp128Compress(in.data(), count, &compressed);
    EXPECT_EQ(written, compressed.size());
    EXPECT_EQ(Bp128CompressedSize(in.data(), count), written);
    std::vector<i32> out(count + 16);
    size_t consumed = Bp128Decompress(compressed.data(), count, out.data());
    EXPECT_EQ(consumed, written);
    out.resize(count);
    EXPECT_EQ(in, out) << "count=" << count;
  }
}

TEST(Bp128Test, SmallRangeCompressesWell) {
  // Values in [100, 115]: FOR + 4-bit packing => ~8x.
  Random rng(4);
  std::vector<i32> in(64000);
  for (i32& v : in) v = 100 + static_cast<i32>(rng.NextBounded(16));
  ByteBuffer compressed;
  size_t written = Bp128Compress(in.data(), 64000, &compressed);
  EXPECT_LT(written, 64000 * 4 / 6);
  std::vector<i32> out(64000 + 16);
  Bp128Decompress(compressed.data(), 64000, out.data());
  out.resize(64000);
  EXPECT_EQ(in, out);
}

TEST(Bp128Test, NegativeValuesAndFullRange) {
  std::vector<i32> in = {INT32_MIN, INT32_MAX, -1, 0, 1, -1000000, 1000000};
  ByteBuffer compressed;
  Bp128Compress(in.data(), static_cast<u32>(in.size()), &compressed);
  std::vector<i32> out(in.size() + 16);
  Bp128Decompress(compressed.data(), static_cast<u32>(in.size()), out.data());
  out.resize(in.size());
  EXPECT_EQ(in, out);
}

TEST(PforTest, RoundTripRandom) {
  Random rng(5);
  for (u32 count : {1u, 128u, 130u, 5000u, 64000u}) {
    std::vector<i32> in(count);
    for (i32& v : in) v = static_cast<i32>(rng.Next());
    ByteBuffer compressed;
    size_t written = PforCompress(in.data(), count, &compressed);
    EXPECT_EQ(PforCompressedSize(in.data(), count), written);
    std::vector<i32> out(count + 16);
    size_t consumed = PforDecompress(compressed.data(), count, out.data());
    EXPECT_EQ(consumed, written);
    out.resize(count);
    EXPECT_EQ(in, out) << "count=" << count;
  }
}

TEST(PforTest, OutliersBecomeExceptions) {
  // 1% outliers must not inflate the base bitwidth (paper Section 2.2:
  // Patched FOR stores outliers as exceptions).
  Random rng(6);
  std::vector<i32> in(64000);
  for (size_t i = 0; i < in.size(); i++) {
    in[i] = static_cast<i32>(rng.NextBounded(16));
    if (rng.NextBounded(100) == 0) in[i] = static_cast<i32>(rng.Next());
  }
  ByteBuffer pfor_out, bp_out;
  size_t pfor_bytes = PforCompress(in.data(), 64000, &pfor_out);
  size_t bp_bytes = Bp128Compress(in.data(), 64000, &bp_out);
  EXPECT_LT(pfor_bytes, bp_bytes / 2);  // plain BP must pay 32 bits/value
  std::vector<i32> out(64000 + 16);
  PforDecompress(pfor_out.data(), 64000, out.data());
  out.resize(64000);
  EXPECT_EQ(in, out);
}

TEST(PforTest, ScalarSimdEquivalence) {
  Random rng(8);
  std::vector<i32> in(10000);
  for (i32& v : in) v = 1000 + static_cast<i32>(rng.NextBounded(4096));
  ByteBuffer compressed;
  PforCompress(in.data(), static_cast<u32>(in.size()), &compressed);

  std::vector<i32> out_simd(in.size() + 16), out_scalar(in.size() + 16);
  {
    ScopedSimd simd_on(true);
    PforDecompress(compressed.data(), static_cast<u32>(in.size()), out_simd.data());
  }
  {
    ScopedSimd simd_off(false);
    PforDecompress(compressed.data(), static_cast<u32>(in.size()),
                   out_scalar.data());
  }
  out_simd.resize(in.size());
  out_scalar.resize(in.size());
  EXPECT_EQ(out_simd, in);
  EXPECT_EQ(out_scalar, in);
}

TEST(MaxBitsTest, Basics) {
  std::vector<u32> zero(10, 0);
  EXPECT_EQ(MaxBits(zero.data(), 10), 0u);
  std::vector<u32> mixed = {1, 2, 255, 7};
  EXPECT_EQ(MaxBits(mixed.data(), 4), 8u);
}

}  // namespace
}  // namespace btr::bitpack
