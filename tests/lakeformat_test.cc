// Tests for the Parquet-like and ORC-like baseline formats: encoding
// building blocks, round trips across codecs, dictionary fallback.
#include <gtest/gtest.h>

#include <vector>

#include "datagen/public_bi.h"
#include "datagen/tpch.h"
#include "lakeformat/orc_like.h"
#include "lakeformat/parquet_like.h"
#include "util/random.h"

namespace btr::lakeformat {
namespace {

void ExpectRelationsEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.columns().size(), b.columns().size());
  ASSERT_EQ(a.row_count(), b.row_count());
  for (size_t c = 0; c < a.columns().size(); c++) {
    const Column& ca = a.columns()[c];
    const Column& cb = b.columns()[c];
    ASSERT_EQ(ca.type(), cb.type());
    for (u32 r = 0; r < a.row_count(); r++) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r)) << ca.name() << " row " << r;
      switch (ca.type()) {
        case ColumnType::kInteger:
          ASSERT_EQ(ca.ints()[r], cb.ints()[r]) << ca.name() << " row " << r;
          break;
        case ColumnType::kDouble: {
          u64 x, y;
          std::memcpy(&x, &ca.doubles()[r], 8);
          std::memcpy(&y, &cb.doubles()[r], 8);
          ASSERT_EQ(x, y) << ca.name() << " row " << r;
          break;
        }
        case ColumnType::kString:
          ASSERT_EQ(ca.GetString(r), cb.GetString(r)) << ca.name() << " row " << r;
          break;
      }
    }
  }
}

// --- building blocks ---------------------------------------------------------

class HybridTest : public ::testing::TestWithParam<u32> {};

TEST_P(HybridTest, RoundTripAcrossBitWidths) {
  u32 bit_width = GetParam();
  Random rng(bit_width + 1);
  u32 bound = bit_width >= 32 ? 0xFFFFFFFFu : ((1u << bit_width) - 1);
  std::vector<u32> values(3000);
  for (size_t i = 0; i < values.size(); i++) {
    // Mix runs and noise to hit both hybrid modes.
    if (rng.NextBounded(4) == 0 && i > 0) {
      values[i] = values[i - 1];
    } else {
      values[i] = bound == 0 ? 0 : static_cast<u32>(rng.Next()) & bound;
    }
  }
  // Inject a long run for the RLE branch.
  for (size_t i = 500; i < 700; i++) values[i] = values[500];
  ByteBuffer encoded;
  HybridEncode(values.data(), static_cast<u32>(values.size()), bit_width,
               &encoded);
  std::vector<u32> decoded(values.size());
  HybridDecode(encoded.data(), static_cast<u32>(values.size()), bit_width,
               decoded.data());
  EXPECT_EQ(decoded, values);
}

INSTANTIATE_TEST_SUITE_P(Widths, HybridTest,
                         ::testing::Values(0u, 1u, 2u, 5u, 8u, 13u, 20u, 32u));

TEST(OrcIntTest, RoundTripMixedModes) {
  Random rng(9);
  std::vector<i64> values;
  // Repeats.
  for (int i = 0; i < 100; i++) values.push_back(42);
  // Deltas.
  for (int i = 0; i < 100; i++) values.push_back(1000 + i * 7);
  // Noise including negatives and 64-bit magnitudes.
  for (int i = 0; i < 1000; i++) {
    values.push_back(static_cast<i64>(rng.Next()));
  }
  // Short runs that stay in direct mode.
  for (int i = 0; i < 100; i++) {
    values.push_back(i % 3);
    values.push_back(i % 3);
  }
  ByteBuffer encoded;
  OrcIntEncode(values.data(), static_cast<u32>(values.size()), &encoded);
  std::vector<i64> decoded(values.size());
  OrcIntDecode(encoded.data(), static_cast<u32>(values.size()), decoded.data());
  EXPECT_EQ(decoded, values);
}

TEST(HybridTest, RleRunAfterPartialGroupStaysAligned) {
  // The writer may only start an RLE run at an 8-value boundary of the
  // pending bit-packed buffer; a long run arriving mid-group must decode
  // correctly either way.
  std::vector<u32> values;
  for (u32 i = 0; i < 5; i++) values.push_back(i % 3);  // partial group
  for (u32 i = 0; i < 100; i++) values.push_back(2);    // long run mid-group
  for (u32 i = 0; i < 11; i++) values.push_back(i % 3);
  ByteBuffer encoded;
  HybridEncode(values.data(), static_cast<u32>(values.size()), 2, &encoded);
  std::vector<u32> decoded(values.size());
  HybridDecode(encoded.data(), static_cast<u32>(values.size()), 2,
               decoded.data());
  EXPECT_EQ(decoded, values);
}

TEST(OrcIntTest, LongDirectWindowAndWideValues) {
  // > 512 values without runs forces multiple direct windows; 64-bit
  // magnitudes exercise the cross-byte spill in the packer.
  Random rng(77);
  std::vector<i64> values;
  for (int i = 0; i < 1300; i++) {
    values.push_back(static_cast<i64>(rng.Next()) >> (i % 48));
  }
  ByteBuffer encoded;
  OrcIntEncode(values.data(), static_cast<u32>(values.size()), &encoded);
  std::vector<i64> decoded(values.size());
  OrcIntDecode(encoded.data(), static_cast<u32>(values.size()), decoded.data());
  EXPECT_EQ(decoded, values);
}

TEST(OrcIntTest, RepeatAndDeltaCompress) {
  std::vector<i64> repeats(10000, 7);
  ByteBuffer encoded;
  OrcIntEncode(repeats.data(), 10000, &encoded);
  EXPECT_LT(encoded.size(), 100u);

  std::vector<i64> sequence(10000);
  for (int i = 0; i < 10000; i++) sequence[i] = i;
  ByteBuffer encoded2;
  OrcIntEncode(sequence.data(), 10000, &encoded2);
  EXPECT_LT(encoded2.size(), 100u);
}

// --- file round trips -----------------------------------------------------------

class FormatRoundTripTest : public ::testing::TestWithParam<gpc::CodecKind> {};

TEST_P(FormatRoundTripTest, ParquetLike) {
  Relation table = datagen::MakePublicBiTable("t", 50000, 77);
  ParquetOptions options;
  options.codec = GetParam();
  options.rowgroup_rows = 20000;  // force multiple rowgroups
  ByteBuffer file = WriteParquetLike(table, options);
  EXPECT_LT(file.size(), table.UncompressedBytes());

  Relation back("t");
  Status status = ReadParquetLike(file.data(), file.size(), &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectRelationsEqual(table, back);

  u64 bytes = 0;
  ASSERT_TRUE(DecodeParquetLikeBytes(file.data(), file.size(), &bytes).ok());
  EXPECT_GT(bytes, 0u);

  // Corruption surfaces as a Status, not an abort.
  u64 ignored = 0;
  EXPECT_FALSE(DecodeParquetLikeBytes(file.data(), 4, &ignored).ok());
}

TEST_P(FormatRoundTripTest, OrcLike) {
  Relation table = datagen::MakePublicBiTable("t", 50000, 78);
  OrcOptions options;
  options.codec = GetParam();
  options.stripe_rows = 20000;
  ByteBuffer file = WriteOrcLike(table, options);
  EXPECT_LT(file.size(), table.UncompressedBytes());

  Relation back("t");
  Status status = ReadOrcLike(file.data(), file.size(), &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectRelationsEqual(table, back);

  u64 bytes = 0;
  ASSERT_TRUE(DecodeOrcLikeBytes(file.data(), file.size(), &bytes).ok());
  EXPECT_GT(bytes, 0u);

  // Corruption surfaces as a Status, not an abort.
  u64 ignored = 0;
  EXPECT_FALSE(DecodeOrcLikeBytes(file.data(), 4, &ignored).ok());
}

INSTANTIATE_TEST_SUITE_P(Codecs, FormatRoundTripTest,
                         ::testing::Values(gpc::CodecKind::kNone,
                                           gpc::CodecKind::kLz77,
                                           gpc::CodecKind::kEntropyLz));

TEST(ParquetLikeTest, DictionaryFallbackOnHighCardinality) {
  // Every value distinct and large dictionary: Parquet's heuristic must
  // fall back to PLAIN (paper Section 2.1) and the file stays ~input size.
  Relation table("t");
  Column& c = table.AddColumn("s", ColumnType::kString);
  for (int i = 0; i < 50000; i++) {
    c.AppendString("unique_value_with_padding_" + std::to_string(i) +
                   std::string(32, 'x'));
  }
  ParquetOptions options;
  options.dict_byte_limit = 1 << 16;  // small limit to trigger fallback
  ByteBuffer file = WriteParquetLike(table, options);
  EXPECT_GT(file.size(), table.UncompressedBytes() * 9 / 10);
  Relation back("t");
  ASSERT_TRUE(ReadParquetLike(file.data(), file.size(), &back).ok());
  ExpectRelationsEqual(table, back);
}

TEST(LakeFormatTest, CompressionRatioOrderingOnPbi) {
  // Paper Table 2 shape: parquet < parquet+lz4/snappy-class <
  // parquet+zstd-class in compression ratio.
  Relation table = datagen::MakePublicBiTable("t", 100000, 79);
  u64 uncompressed = table.UncompressedBytes();
  ParquetOptions plain_opts;
  ParquetOptions lz_opts;
  lz_opts.codec = gpc::CodecKind::kLz77;
  ParquetOptions zstd_opts;
  zstd_opts.codec = gpc::CodecKind::kEntropyLz;
  u64 plain = WriteParquetLike(table, plain_opts).size();
  u64 lz = WriteParquetLike(table, lz_opts).size();
  u64 entropy = WriteParquetLike(table, zstd_opts).size();
  EXPECT_LT(plain, uncompressed);
  EXPECT_LT(lz, plain);
  EXPECT_LE(entropy, lz);
}

TEST(LakeFormatTest, TpchRoundTrip) {
  datagen::TpchOptions options;
  options.lineitem_rows = 30000;
  Relation lineitem = datagen::MakeLineitem(options);
  ParquetOptions popts;
  popts.codec = gpc::CodecKind::kLz77;
  ByteBuffer pfile = WriteParquetLike(lineitem, popts);
  Relation pback("lineitem");
  ASSERT_TRUE(ReadParquetLike(pfile.data(), pfile.size(), &pback).ok());
  ExpectRelationsEqual(lineitem, pback);

  OrcOptions oopts;
  oopts.codec = gpc::CodecKind::kEntropyLz;
  ByteBuffer ofile = WriteOrcLike(lineitem, oopts);
  Relation oback("lineitem");
  ASSERT_TRUE(ReadOrcLike(ofile.data(), ofile.size(), &oback).ok());
  ExpectRelationsEqual(lineitem, oback);
}

}  // namespace
}  // namespace btr::lakeformat
