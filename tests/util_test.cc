// Unit tests for the util module: bit twiddling, buffers, bitstreams, PRNG.
#include <gtest/gtest.h>

#include <vector>

#include "util/bits.h"
#include "util/bitstream.h"
#include "util/buffer.h"
#include "util/random.h"

namespace btr {
namespace {

TEST(BitsTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(3), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(0xFFFFFFFFu), 32u);
}

TEST(BitsTest, Zigzag) {
  for (i32 v : {0, 1, -1, 2, -2, 1000000, -1000000, INT32_MAX, INT32_MIN}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(BitsTest, LeadingTrailingZeros) {
  EXPECT_EQ(CountLeadingZeros64(0), 64u);
  EXPECT_EQ(CountTrailingZeros64(0), 64u);
  EXPECT_EQ(CountLeadingZeros64(1), 63u);
  EXPECT_EQ(CountTrailingZeros64(u64{1} << 63), 63u);
}

TEST(ByteBufferTest, AppendAndResize) {
  ByteBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  u32 value = 0xDEADBEEF;
  buffer.AppendValue(value);
  EXPECT_EQ(buffer.size(), 4u);
  buffer.Resize(100);
  EXPECT_EQ(buffer.size(), 100u);
  u32 read;
  std::memcpy(&read, buffer.data(), 4);
  EXPECT_EQ(read, value);  // contents preserved across growth
}

TEST(ByteBufferTest, PaddingAlwaysPresent) {
  ByteBuffer buffer;
  for (int i = 0; i < 1000; i++) {
    buffer.AppendValue<u8>(static_cast<u8>(i));
    ASSERT_GE(buffer.capacity(), buffer.size() + kSimdPadding);
  }
}

TEST(BitStreamTest, RoundTripVariousWidths) {
  BitWriter writer;
  std::vector<std::pair<u64, u32>> values;
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    u32 bits = 1 + static_cast<u32>(rng.NextBounded(64));
    u64 value = rng.Next() & (bits == 64 ? ~u64{0} : ((u64{1} << bits) - 1));
    values.push_back({value, bits});
    writer.Write(value, bits);
  }
  std::vector<u64> words = writer.Finish();
  BitReader reader(words.data(), words.size());
  for (auto [value, bits] : values) {
    EXPECT_EQ(reader.Read(bits), value);
  }
}

TEST(BitStreamTest, SingleBits) {
  BitWriter writer;
  for (int i = 0; i < 130; i++) writer.WriteBit(i % 3 == 0);
  std::vector<u64> words = writer.Finish();
  BitReader reader(words.data(), words.size());
  for (int i = 0; i < 130; i++) EXPECT_EQ(reader.ReadBit(), i % 3 == 0);
}

TEST(BitStreamTest, Exact64BitValues) {
  BitWriter writer;
  writer.Write(0xFFFFFFFFFFFFFFFFULL, 64);
  writer.Write(0x0123456789ABCDEFULL, 64);
  std::vector<u64> words = writer.Finish();
  BitReader reader(words.data(), words.size());
  EXPECT_EQ(reader.Read(64), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(reader.Read(64), 0x0123456789ABCDEFULL);
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
  Random rng(5);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  Random rng(9);
  u64 zero_count = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; i++) {
    u64 r = rng.NextZipf(1000, 1.2);
    EXPECT_LT(r, 1000u);
    if (r == 0) zero_count++;
  }
  // Rank 0 must dominate a uniform draw (which would give ~10 hits).
  EXPECT_GT(zero_count, 1000u);
}

}  // namespace
}  // namespace btr
