// Double scheme tests, with emphasis on Pseudodecimal Encoding's
// bitwise-lossless guarantee (paper Section 4).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "btr/scheme_picker.h"
#include "btr/schemes/double_schemes.h"
#include "util/random.h"
#include "util/simd.h"

namespace btr {
namespace {

CompressionConfig DefaultConfig() { return CompressionConfig{}; }

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<double> RoundTripPicked(const std::vector<double>& in,
                                    const CompressionConfig& config,
                                    DoubleSchemeCode* chosen = nullptr) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressDoubles(in.data(), static_cast<u32>(in.size()), &compressed, ctx,
                  chosen);
  std::vector<double> out(in.size() + kDecodeSlack);
  DecompressDoubles(compressed.data(), static_cast<u32>(in.size()), out.data());
  out.resize(in.size());
  return out;
}

std::vector<double> RoundTripWithScheme(DoubleSchemeCode code,
                                        const std::vector<double>& in) {
  CompressionConfig config = DefaultConfig();
  CompressionContext ctx{&config, config.max_cascade_depth};
  const DoubleScheme& scheme = GetDoubleScheme(code);
  ByteBuffer compressed;
  scheme.Compress(in.data(), static_cast<u32>(in.size()), &compressed, ctx);
  std::vector<double> out(in.size() + kDecodeSlack);
  scheme.Decompress(compressed.data(), static_cast<u32>(in.size()), out.data());
  out.resize(in.size());
  return out;
}

// --- Pseudodecimal single-value encoding (paper Listing 2) -------------------

TEST(PseudodecimalTest, EncodesPriceData) {
  using pseudodecimal::EncodeSingle;
  auto d = EncodeSingle(3.25);
  EXPECT_EQ(d.digits, 325);
  EXPECT_EQ(d.exp, 2u);
  d = EncodeSingle(0.99);
  EXPECT_EQ(d.digits, 99);
  EXPECT_EQ(d.exp, 2u);
  d = EncodeSingle(-6.425);
  EXPECT_EQ(d.digits, -6425);
  EXPECT_EQ(d.exp, 3u);
  d = EncodeSingle(42.0);
  EXPECT_EQ(d.digits, 42);
  EXPECT_EQ(d.exp, 0u);
}

TEST(PseudodecimalTest, DecodeIsBitwiseInverse) {
  using pseudodecimal::DecodeSingle;
  using pseudodecimal::EncodeSingle;
  using pseudodecimal::kExponentException;
  Random rng(1);
  int encoded_count = 0;
  for (int i = 0; i < 100000; i++) {
    double v = static_cast<double>(rng.NextRange(-1000000, 1000000)) / 100.0;
    auto d = EncodeSingle(v);
    if (d.exp == kExponentException) continue;  // rare: patched (lossless)
    double back = DecodeSingle(d.digits, d.exp);
    u64 a, b;
    std::memcpy(&a, &v, 8);
    std::memcpy(&b, &back, 8);
    ASSERT_EQ(a, b) << v;
    encoded_count++;
  }
  // Most 2-decimal values encode without patch even at 8 significant
  // digits, where double rounding makes the exactness check borderline.
  EXPECT_GT(encoded_count, 85000);
  // Small-digit prices (the paper's motivating case) encode essentially
  // always.
  int small_encoded = 0;
  for (int k = -9999; k <= 9999; k++) {
    double v = static_cast<double>(k) / 100.0;
    if (EncodeSingle(v).exp != kExponentException) small_encoded++;
  }
  EXPECT_GT(small_encoded, 19900);
}

TEST(PseudodecimalTest, SpecialsBecomePatches) {
  using pseudodecimal::EncodeSingle;
  using pseudodecimal::kExponentException;
  EXPECT_EQ(EncodeSingle(-0.0).exp, kExponentException);
  EXPECT_EQ(EncodeSingle(std::numeric_limits<double>::infinity()).exp,
            kExponentException);
  EXPECT_EQ(EncodeSingle(-std::numeric_limits<double>::infinity()).exp,
            kExponentException);
  EXPECT_EQ(EncodeSingle(std::numeric_limits<double>::quiet_NaN()).exp,
            kExponentException);
  EXPECT_EQ(EncodeSingle(5.5e-42).exp, kExponentException);
  EXPECT_EQ(EncodeSingle(1e300).exp, kExponentException);
  // 0.1 + 0.2 is not exactly 0.3 but IS exactly representable as decimal
  // with more digits... check it encodes or patches, never corrupts.
  auto d = EncodeSingle(0.1 + 0.2);
  if (d.exp != kExponentException) {
    EXPECT_EQ(pseudodecimal::DecodeSingle(d.digits, d.exp), 0.1 + 0.2);
  }
  // +0.0 must NOT be a patch (only -0.0 is).
  EXPECT_EQ(EncodeSingle(0.0).exp, 0u);
  EXPECT_EQ(EncodeSingle(0.0).digits, 0);
}

TEST(PseudodecimalTest, BlockRoundTripWithPatches) {
  Random rng(2);
  std::vector<double> in;
  for (int i = 0; i < 64000; i++) {
    switch (rng.NextBounded(10)) {
      case 0: in.push_back(-0.0); break;
      case 1: in.push_back(std::numeric_limits<double>::quiet_NaN()); break;
      case 2: in.push_back(rng.NextDouble() * 1e-200); break;  // patches
      default:
        in.push_back(static_cast<double>(rng.NextRange(-100000, 100000)) / 100.0);
    }
  }
  auto out = RoundTripWithScheme(DoubleSchemeCode::kPseudodecimal, in);
  EXPECT_TRUE(BitwiseEqual(in, out));
}

TEST(PseudodecimalTest, ScalarSimdEquivalence) {
  Random rng(3);
  std::vector<double> in;
  for (int i = 0; i < 10000; i++) {
    in.push_back(i % 97 == 0 ? 1e-300
                             : static_cast<double>(rng.NextBounded(100000)) / 1000.0);
  }
  CompressionConfig config = DefaultConfig();
  CompressionContext ctx{&config, config.max_cascade_depth};
  const DoubleScheme& pde = GetDoubleScheme(DoubleSchemeCode::kPseudodecimal);
  ByteBuffer compressed;
  pde.Compress(in.data(), static_cast<u32>(in.size()), &compressed, ctx);
  std::vector<double> simd(in.size() + kDecodeSlack),
      scalar(in.size() + kDecodeSlack);
  {
    ScopedSimd on(true);
    pde.Decompress(compressed.data(), static_cast<u32>(in.size()), simd.data());
  }
  {
    ScopedSimd off(false);
    pde.Decompress(compressed.data(), static_cast<u32>(in.size()), scalar.data());
  }
  simd.resize(in.size());
  scalar.resize(in.size());
  EXPECT_TRUE(BitwiseEqual(simd, in));
  EXPECT_TRUE(BitwiseEqual(scalar, in));
}

TEST(PseudodecimalTest, ViabilityFilters) {
  CompressionConfig config = DefaultConfig();
  const DoubleScheme& pde = GetDoubleScheme(DoubleSchemeCode::kPseudodecimal);
  CompressionContext ctx{&config, config.max_cascade_depth};
  // < 10% unique: excluded (paper Section 4.2).
  {
    std::vector<double> in(64000);
    for (size_t i = 0; i < in.size(); i++) in[i] = static_cast<double>(i % 10);
    DoubleStats stats = ComputeDoubleStats(in.data(), 64000);
    DoubleSample sample = BuildDoubleSample(in.data(), 64000, config);
    EXPECT_EQ(pde.EstimateRatio(stats, sample, ctx), 0.0);
  }
  // > 50% exceptions: excluded.
  {
    Random rng(4);
    std::vector<double> in(64000);
    for (double& v : in) v = rng.NextDouble() * 1e-250;
    DoubleStats stats = ComputeDoubleStats(in.data(), 64000);
    DoubleSample sample = BuildDoubleSample(in.data(), 64000, config);
    EXPECT_EQ(pde.EstimateRatio(stats, sample, ctx), 0.0);
  }
}

// --- Other double schemes ------------------------------------------------------

TEST(DoubleSchemeTest, OneValueDictRleFrequencyRoundTrip) {
  Random rng(5);
  std::vector<double> constant(10000, 3.14);
  EXPECT_TRUE(BitwiseEqual(
      RoundTripWithScheme(DoubleSchemeCode::kOneValue, constant), constant));

  std::vector<double> dictionary;
  for (int i = 0; i < 10000; i++) {
    dictionary.push_back(static_cast<double>(rng.NextBounded(50)) * 1.5);
  }
  EXPECT_TRUE(BitwiseEqual(
      RoundTripWithScheme(DoubleSchemeCode::kDict, dictionary), dictionary));

  std::vector<double> runs;
  while (runs.size() < 10000) {
    double v = static_cast<double>(rng.NextBounded(100));
    for (u64 j = 0; j < 1 + rng.NextBounded(30) && runs.size() < 10000; j++) {
      runs.push_back(v);
    }
  }
  EXPECT_TRUE(BitwiseEqual(RoundTripWithScheme(DoubleSchemeCode::kRle, runs),
                           runs));

  std::vector<double> skewed(10000, 0.0);
  for (int i = 0; i < 100; i++) skewed[rng.NextBounded(10000)] = rng.NextDouble();
  EXPECT_TRUE(BitwiseEqual(
      RoundTripWithScheme(DoubleSchemeCode::kFrequency, skewed), skewed));
}

TEST(DoubleSchemeTest, SignedZerosSurviveEverywhere) {
  std::vector<double> in = {0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 1.5, -0.0};
  for (auto code : {DoubleSchemeCode::kUncompressed, DoubleSchemeCode::kRle,
                    DoubleSchemeCode::kDict, DoubleSchemeCode::kFrequency,
                    DoubleSchemeCode::kPseudodecimal}) {
    EXPECT_TRUE(BitwiseEqual(RoundTripWithScheme(code, in), in))
        << DoubleSchemeName(code);
  }
}

class DoublePickerTest : public ::testing::TestWithParam<u64> {};

TEST_P(DoublePickerTest, PropertyPickedSchemeRoundTrips) {
  Random rng(GetParam());
  u32 shape = static_cast<u32>(rng.NextBounded(5));
  u32 count = 500 + static_cast<u32>(rng.NextBounded(64000));
  std::vector<double> in;
  for (u32 i = 0; i < count; i++) {
    switch (shape) {
      case 0: {
        u64 bits = rng.Next();
        double d;
        std::memcpy(&d, &bits, 8);
        in.push_back(d);
        break;
      }
      case 1: in.push_back(9.75); break;
      case 2:
        in.push_back(static_cast<double>(rng.NextBounded(10000)) / 100.0);
        break;
      case 3: in.push_back(static_cast<double>(rng.NextBounded(8))); break;
      case 4:
        in.push_back(in.empty() || rng.NextBounded(3) != 0 ? rng.NextDouble()
                                                           : in.back());
        break;
    }
  }
  auto out = RoundTripPicked(in, DefaultConfig());
  EXPECT_TRUE(BitwiseEqual(in, out)) << "shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoublePickerTest,
                         ::testing::Range<u64>(200, 225));

TEST(DoublePickerTest, PriceColumnPrefersPseudodecimal) {
  // Unique-ish price data in one range: PDE's favorable case
  // (paper Section 6.5).
  Random rng(7);
  std::vector<double> in;
  for (int i = 0; i < 64000; i++) {
    in.push_back(static_cast<double>(10000 + i) +
                 static_cast<double>(rng.NextBounded(100)) / 100.0);
  }
  DoubleSchemeCode chosen;
  auto out = RoundTripPicked(in, DefaultConfig(), &chosen);
  EXPECT_TRUE(BitwiseEqual(in, out));
  EXPECT_EQ(chosen, DoubleSchemeCode::kPseudodecimal);
}

}  // namespace
}  // namespace btr
