// Tests for the composable predicate surface (btr/predicate.h): leaf
// factories and combinators, the --where parser (btr/predicate_parser.h),
// and SQL three-valued semantics — on the compressed form (EvaluateExpr)
// and on decoded blocks (EvaluateExprDecoded), which must agree exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "btr/predicate.h"
#include "btr/predicate_parser.h"

namespace btr {
namespace {

// --- construction ------------------------------------------------------------

TEST(PredicateExprTest, InSetsAreSortedAndDeduplicated) {
  PredicateExpr e = Predicate::InInt("c", {5, 3, 5, 1, 3});
  EXPECT_EQ(e.int_set, (std::vector<i32>{1, 3, 5}));
  EXPECT_EQ(e.ToString(), "c IN (1, 3, 5)");

  PredicateExpr s = Predicate::InString("s", {"b", "a", "b"});
  EXPECT_EQ(s.string_set, (std::vector<std::string>{"a", "b"}));

  // Doubles dedupe by bit pattern: -0.0 and 0.0 are distinct patterns.
  PredicateExpr d = Predicate::InDouble("d", {0.0, -0.0, 0.0});
  EXPECT_EQ(d.double_set.size(), 2u);
}

TEST(PredicateExprTest, CombinatorsFlattenAndDropEmpty) {
  PredicateExpr a = Predicate::EqualsInt("a", 1);
  PredicateExpr b = Predicate::EqualsInt("b", 2);
  PredicateExpr c = Predicate::EqualsInt("c", 3);

  // AND of zero / all-empty operands is the empty (match-all) expression.
  EXPECT_TRUE(PredicateExpr::And({}).Empty());
  EXPECT_TRUE(PredicateExpr::And(PredicateExpr(), PredicateExpr()).Empty());

  // A single surviving operand is returned directly, not wrapped.
  PredicateExpr single = PredicateExpr::And(PredicateExpr(), a);
  EXPECT_TRUE(single.IsLeaf());
  EXPECT_EQ(single.column, "a");

  // Nested same-kind nodes flatten: AND(AND(a, b), c) has three children.
  PredicateExpr nested =
      PredicateExpr::And(PredicateExpr::And(a, b), c);
  ASSERT_EQ(nested.kind, PredicateExpr::Kind::kAnd);
  EXPECT_EQ(nested.children.size(), 3u);

  // Mixed kinds do not flatten.
  PredicateExpr mixed = PredicateExpr::And(PredicateExpr::Or(a, b), c);
  ASSERT_EQ(mixed.kind, PredicateExpr::Kind::kAnd);
  ASSERT_EQ(mixed.children.size(), 2u);
  EXPECT_EQ(mixed.children[0].kind, PredicateExpr::Kind::kOr);
}

TEST(PredicateExprTest, ColumnsDeduplicatesInFirstUseOrder) {
  PredicateExpr e = PredicateExpr::And(
      PredicateExpr::Or(Predicate::EqualsInt("x", 1),
                        Predicate::EqualsInt("y", 2)),
      Predicate::EqualsInt("x", 3));
  EXPECT_EQ(e.Columns(), (std::vector<std::string>{"x", "y"}));

  u32 leaves = 0;
  e.ForEachLeaf([&](const PredicateExpr&) { leaves++; });
  EXPECT_EQ(leaves, 3u);
}

// --- parser ------------------------------------------------------------------

TEST(PredicateParserTest, ParsesLeavesAndRendersBack) {
  struct Case {
    const char* input;
    const char* rendered;
  };
  const Case cases[] = {
      {"a = 5", "a = 5"},
      {"a == 5", "a = 5"},
      {"a >= 5 AND name IN ('a', 'b')", "a >= 5 AND name IN ('a', 'b')"},
      {"id BETWEEN 10 AND 20", "id BETWEEN 10 AND 20"},
      {"NOT a < 3", "NOT a < 3"},
  };
  for (const Case& c : cases) {
    PredicateExpr e;
    Status status = ParsePredicate(c.input, &e);
    ASSERT_TRUE(status.ok()) << c.input << ": " << status.ToString();
    EXPECT_EQ(e.ToString(), c.rendered) << c.input;
  }
}

TEST(PredicateParserTest, PrecedenceNotThenAndThenOr) {
  PredicateExpr e;
  ASSERT_TRUE(ParsePredicate("a = 1 OR b = 2 AND c = 3", &e).ok());
  ASSERT_EQ(e.kind, PredicateExpr::Kind::kOr);
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_TRUE(e.children[0].IsLeaf());
  EXPECT_EQ(e.children[1].kind, PredicateExpr::Kind::kAnd);

  // Parentheses override.
  ASSERT_TRUE(ParsePredicate("(a = 1 OR b = 2) AND c = 3", &e).ok());
  ASSERT_EQ(e.kind, PredicateExpr::Kind::kAnd);
  EXPECT_EQ(e.children[0].kind, PredicateExpr::Kind::kOr);

  // NOT binds tighter than AND.
  ASSERT_TRUE(ParsePredicate("NOT a = 1 AND b = 2", &e).ok());
  ASSERT_EQ(e.kind, PredicateExpr::Kind::kAnd);
  EXPECT_EQ(e.children[0].kind, PredicateExpr::Kind::kNot);
}

TEST(PredicateParserTest, NotEqualsAndNotInDesugarToNot) {
  PredicateExpr e;
  ASSERT_TRUE(ParsePredicate("a != 5", &e).ok());
  ASSERT_EQ(e.kind, PredicateExpr::Kind::kNot);
  ASSERT_TRUE(e.children[0].IsLeaf());
  EXPECT_EQ(e.children[0].op, CompareOp::kEq);

  ASSERT_TRUE(ParsePredicate("a <> 5", &e).ok());
  EXPECT_EQ(e.kind, PredicateExpr::Kind::kNot);

  ASSERT_TRUE(ParsePredicate("a NOT IN (1, 2)", &e).ok());
  ASSERT_EQ(e.kind, PredicateExpr::Kind::kNot);
  EXPECT_EQ(e.children[0].op, CompareOp::kIn);
  EXPECT_EQ(e.children[0].int_set, (std::vector<i32>{1, 2}));
}

TEST(PredicateParserTest, LiteralTypingAndPromotion) {
  PredicateExpr e;
  ASSERT_TRUE(ParsePredicate("a = 5", &e).ok());
  EXPECT_EQ(e.type, ColumnType::kInteger);

  ASSERT_TRUE(ParsePredicate("a = 1.5", &e).ok());
  EXPECT_EQ(e.type, ColumnType::kDouble);
  EXPECT_EQ(e.double_lo, 1.5);

  ASSERT_TRUE(ParsePredicate("a = 2e3", &e).ok());
  EXPECT_EQ(e.type, ColumnType::kDouble);
  EXPECT_EQ(e.double_lo, 2000.0);

  ASSERT_TRUE(ParsePredicate("a = 'x'", &e).ok());
  EXPECT_EQ(e.type, ColumnType::kString);

  // Mixed int/double BETWEEN bounds and IN lists promote to double.
  ASSERT_TRUE(ParsePredicate("a BETWEEN 1 AND 2.5", &e).ok());
  EXPECT_EQ(e.type, ColumnType::kDouble);
  EXPECT_EQ(e.double_lo, 1.0);
  EXPECT_EQ(e.double_hi, 2.5);

  ASSERT_TRUE(ParsePredicate("a IN (1, 2.5)", &e).ok());
  EXPECT_EQ(e.type, ColumnType::kDouble);
  EXPECT_EQ(e.double_set.size(), 2u);

  // SQL doubled-quote escape inside string literals.
  ASSERT_TRUE(ParsePredicate("a = 'it''s'", &e).ok());
  EXPECT_EQ(e.string_lo, "it's");
}

TEST(PredicateParserTest, EmptyInputIsEmptyExpression) {
  PredicateExpr e;
  ASSERT_TRUE(ParsePredicate("", &e).ok());
  EXPECT_TRUE(e.Empty());
  ASSERT_TRUE(ParsePredicate("   \t ", &e).ok());
  EXPECT_TRUE(e.Empty());
}

TEST(PredicateParserTest, ErrorsAreInvalidArgumentAndLeaveOutputEmpty) {
  const char* bad[] = {
      "a >",                   // missing literal
      "= 5",                   // missing column
      "a = 5 AND",             // dangling AND
      "a IN ()",               // empty IN list
      "a IN (1, 'x')",         // mixed string/number list
      "a BETWEEN 'x' AND 2",   // mixed BETWEEN bounds
      "a = 'unterminated",     // unterminated string
      "a = 99999999999",       // out of i32 range
      "a ~ 5",                 // unknown operator
      "a = 5 b = 6",           // trailing garbage
  };
  for (const char* input : bad) {
    PredicateExpr e = Predicate::EqualsInt("sentinel", 1);
    Status status = ParsePredicate(input, &e);
    EXPECT_TRUE(status.IsInvalidArgument())
        << input << " -> " << status.ToString();
    EXPECT_TRUE(e.Empty()) << input << " must leave *out empty";
  }
}

// --- three-valued logic on blocks --------------------------------------------

// One compressed int block with NULLs every 7th row. NULL rows store the
// default value 0 inside the encoding, so any engine that forgets the
// null bitmap will wrongly match them with c = 0.
struct NullBlockFixture {
  CompressionConfig config;
  Column column{"c", ColumnType::kInteger};
  CompressedColumn compressed;
  DecodedBlock decoded;
  u32 rows = 1000;

  NullBlockFixture() {
    for (u32 i = 0; i < rows; i++) {
      if (i % 7 == 0) {
        column.AppendNull();
      } else {
        column.AppendInt(static_cast<i32>(i % 10));
      }
    }
    compressed = CompressColumn(column, config);
    DecompressBlock(compressed.blocks[0].data(), &decoded, config);
  }

  EvalResult Eval(const PredicateExpr& expr) const {
    auto block_of = [&](const std::string&) -> const u8* {
      return compressed.blocks[0].data();
    };
    return EvaluateExpr(expr, rows, block_of, config, nullptr);
  }

  EvalResult EvalDecoded(const PredicateExpr& expr) const {
    auto decoded_of = [&](const std::string&) -> const DecodedBlock* {
      return &decoded;
    };
    return EvaluateExprDecoded(expr, rows, decoded_of);
  }
};

void ExpectSameResult(const EvalResult& a, const EvalResult& b,
                      const char* what) {
  EXPECT_EQ(a.pass.ToVector(), b.pass.ToVector())
      << what << ": pass sets differ";
  EXPECT_EQ(a.unknown.ToVector(), b.unknown.ToVector())
      << what << ": unknown sets differ";
}

TEST(PredicateEvalTest, NullRowsAreUnknownNotFalse) {
  NullBlockFixture f;
  // c = 0: NULL rows (which store 0 raw) must be UNKNOWN, not matches.
  EvalResult eq = f.Eval(Predicate::EqualsInt("c", 0));
  for (u32 i = 0; i < f.rows; i++) {
    if (i % 7 == 0) {
      EXPECT_FALSE(eq.pass.Contains(i)) << "null row " << i << " matched";
      EXPECT_TRUE(eq.unknown.Contains(i)) << "null row " << i;
    } else {
      EXPECT_EQ(eq.pass.Contains(i), (i % 10) == 0) << "row " << i;
      EXPECT_FALSE(eq.unknown.Contains(i));
    }
  }
  ExpectSameResult(eq, f.EvalDecoded(Predicate::EqualsInt("c", 0)), "c = 0");
}

TEST(PredicateEvalTest, NotOfUnknownStaysUnknown) {
  NullBlockFixture f;
  // NOT (c = 0): SQL says NOT UNKNOWN = UNKNOWN, so NULL rows still do
  // not pass — the classic "WHERE col <> x drops NULLs" behavior.
  PredicateExpr expr = PredicateExpr::Not(Predicate::EqualsInt("c", 0));
  EvalResult r = f.Eval(expr);
  for (u32 i = 0; i < f.rows; i++) {
    if (i % 7 == 0) {
      EXPECT_FALSE(r.pass.Contains(i)) << "null row " << i;
      EXPECT_TRUE(r.unknown.Contains(i)) << "null row " << i;
    } else {
      EXPECT_EQ(r.pass.Contains(i), (i % 10) != 0) << "row " << i;
    }
  }
  ExpectSameResult(r, f.EvalDecoded(expr), "NOT c = 0");
}

TEST(PredicateEvalTest, KleeneAndOrWithUnknown) {
  NullBlockFixture f;
  // TRUE OR UNKNOWN = TRUE: (c < 100 OR c = 0) is TRUE on every non-null
  // row; on NULL rows both sides are UNKNOWN so the OR stays UNKNOWN.
  PredicateExpr or_expr =
      PredicateExpr::Or(Predicate::CompareInt("c", CompareOp::kLt, 100),
                        Predicate::EqualsInt("c", 0));
  EvalResult o = f.Eval(or_expr);
  for (u32 i = 0; i < f.rows; i++) {
    EXPECT_EQ(o.pass.Contains(i), i % 7 != 0) << "row " << i;
    EXPECT_EQ(o.unknown.Contains(i), i % 7 == 0) << "row " << i;
  }
  ExpectSameResult(o, f.EvalDecoded(or_expr), "OR");

  // (c < 0 AND c = 0): FALSE on every non-null row. On NULL rows both
  // conjuncts are UNKNOWN, and UNKNOWN AND UNKNOWN = UNKNOWN — the rows
  // still do not pass, but they are not FALSE either.
  PredicateExpr and_expr =
      PredicateExpr::And(Predicate::CompareInt("c", CompareOp::kLt, 0),
                         Predicate::EqualsInt("c", 0));
  EvalResult a = f.Eval(and_expr);
  EXPECT_EQ(a.pass.Cardinality(), 0u);
  for (u32 i = 0; i < f.rows; i++) {
    EXPECT_EQ(a.unknown.Contains(i), i % 7 == 0) << "row " << i;
  }
  ExpectSameResult(a, f.EvalDecoded(and_expr), "AND");
}

TEST(PredicateEvalTest, EmptyExpressionMatchesEveryRow) {
  NullBlockFixture f;
  EvalResult r = f.Eval(PredicateExpr());
  EXPECT_EQ(r.pass.Cardinality(), f.rows);
  EXPECT_EQ(r.unknown.Cardinality(), 0u);
}

TEST(PredicateEvalTest, RangeOpsOnCompressedForm) {
  CompressionConfig config;
  Column column("c", ColumnType::kInteger);
  for (u32 i = 0; i < 5000; i++) column.AppendInt(static_cast<i32>(i % 100));
  CompressedColumn compressed = CompressColumn(column, config);
  const u8* block = compressed.blocks[0].data();

  EXPECT_EQ(CountMatches(block, Predicate::CompareInt("c", CompareOp::kLt, 10),
                         config),
            500u);
  EXPECT_EQ(CountMatches(block, Predicate::CompareInt("c", CompareOp::kLe, 10),
                         config),
            550u);
  EXPECT_EQ(CountMatches(block, Predicate::CompareInt("c", CompareOp::kGt, 89),
                         config),
            500u);
  EXPECT_EQ(CountMatches(block, Predicate::CompareInt("c", CompareOp::kGe, 89),
                         config),
            550u);
  EXPECT_EQ(CountMatches(block, Predicate::BetweenInt("c", 10, 19), config),
            500u);
  EXPECT_EQ(CountMatches(block, Predicate::InInt("c", {5, 7, 500}), config),
            100u);
  // Inverted BETWEEN is empty, not a crash.
  EXPECT_EQ(CountMatches(block, Predicate::BetweenInt("c", 19, 10), config),
            0u);
}

TEST(PredicateEvalTest, DoubleOrderedOpsNeverMatchNaN) {
  CompressionConfig config;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Column column("d", ColumnType::kDouble);
  column.AppendDouble(1.0);
  column.AppendDouble(nan);
  column.AppendDouble(-1.0);
  column.AppendDouble(nan);
  CompressedColumn compressed = CompressColumn(column, config);
  const u8* block = compressed.blocks[0].data();

  // Ordered comparisons are IEEE-ordered: NaN matches nothing.
  EXPECT_EQ(CountMatches(
                block, Predicate::CompareDouble("d", CompareOp::kLt, 100.0),
                config),
            2u);
  EXPECT_EQ(CountMatches(
                block, Predicate::CompareDouble("d", CompareOp::kGe, -100.0),
                config),
            2u);
  EXPECT_EQ(CountMatches(block, Predicate::BetweenDouble("d", -2.0, 2.0),
                         config),
            2u);
  // Bit-pattern equality does match stored NaNs of identical bits.
  EXPECT_EQ(CountMatches(block, Predicate::EqualsDouble("d", nan), config),
            2u);
}

TEST(PredicateEvalTest, StringRangeAndInOnDictionary) {
  CompressionConfig config;
  Column column("s", ColumnType::kString);
  const char* cities[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < 2000; i++) column.AppendString(cities[i % 4]);
  CompressedColumn compressed = CompressColumn(column, config);
  const u8* block = compressed.blocks[0].data();

  EXPECT_EQ(CountMatches(block,
                         Predicate::InString("s", {"bonn", "munich", "paris"}),
                         config),
            1000u);
  // Lexicographic range [berlin, bonn] covers berlin and bonn.
  EXPECT_EQ(CountMatches(block, Predicate::BetweenString("s", "berlin", "bonn"),
                         config),
            1000u);
  EXPECT_EQ(CountMatches(
                block, Predicate::CompareString("s", CompareOp::kLt, "bonn"),
                config),
            500u);
}

}  // namespace
}  // namespace btr
