// Integer scheme tests: per-scheme round trips, cascading behavior,
// viability filters, and scalar/SIMD equivalence.
#include <gtest/gtest.h>

#include <vector>

#include "btr/scheme_picker.h"
#include "btr/schemes/int_schemes.h"
#include "util/random.h"
#include "util/simd.h"

namespace btr {
namespace {

CompressionConfig DefaultConfig() { return CompressionConfig{}; }

std::vector<i32> RoundTripWithScheme(const IntScheme& scheme,
                                     const std::vector<i32>& in,
                                     const CompressionConfig& config) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  scheme.Compress(in.data(), static_cast<u32>(in.size()), &compressed, ctx);
  std::vector<i32> out(in.size() + kDecodeSlack);
  scheme.Decompress(compressed.data(), static_cast<u32>(in.size()), out.data());
  out.resize(in.size());
  return out;
}

std::vector<i32> RoundTripPicked(const std::vector<i32>& in,
                                 const CompressionConfig& config,
                                 IntSchemeCode* chosen = nullptr) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressInts(in.data(), static_cast<u32>(in.size()), &compressed, ctx, chosen);
  std::vector<i32> out(in.size() + kDecodeSlack);
  DecompressInts(compressed.data(), static_cast<u32>(in.size()), out.data());
  out.resize(in.size());
  return out;
}

std::vector<i32> MakeRuns(u64 seed, u32 count, u32 max_run, u32 cardinality) {
  Random rng(seed);
  std::vector<i32> v;
  while (v.size() < count) {
    i32 value = static_cast<i32>(rng.NextBounded(cardinality));
    u32 run = 1 + static_cast<u32>(rng.NextBounded(max_run));
    for (u32 i = 0; i < run && v.size() < count; i++) v.push_back(value);
  }
  return v;
}

TEST(IntSchemeTest, OneValueRoundTrip) {
  std::vector<i32> in(64000, -1234);
  auto out = RoundTripWithScheme(GetIntScheme(IntSchemeCode::kOneValue), in,
                                 DefaultConfig());
  EXPECT_EQ(out, in);
}

TEST(IntSchemeTest, RleRoundTripAndCompression) {
  std::vector<i32> in = MakeRuns(1, 64000, 50, 100);
  CompressionConfig config = DefaultConfig();
  CompressionContext ctx{&config, config.max_cascade_depth};
  const IntScheme& rle = GetIntScheme(IntSchemeCode::kRle);
  ByteBuffer compressed;
  size_t bytes = rle.Compress(in.data(), 64000, &compressed, ctx);
  EXPECT_LT(bytes, 64000 * 4 / 4);  // long runs must compress well
  std::vector<i32> out(in.size() + kDecodeSlack);
  rle.Decompress(compressed.data(), 64000, out.data());
  out.resize(in.size());
  EXPECT_EQ(out, in);
}

TEST(IntSchemeTest, RleSingleRunAndAlternating) {
  // Degenerate runs: one giant run, and run length 1 everywhere.
  std::vector<i32> giant(10000, 7);
  EXPECT_EQ(RoundTripWithScheme(GetIntScheme(IntSchemeCode::kRle), giant,
                                DefaultConfig()),
            giant);
  std::vector<i32> alternating;
  for (int i = 0; i < 999; i++) alternating.push_back(i % 2);
  EXPECT_EQ(RoundTripWithScheme(GetIntScheme(IntSchemeCode::kRle), alternating,
                                DefaultConfig()),
            alternating);
}

TEST(IntSchemeTest, DictRoundTrip) {
  Random rng(2);
  std::vector<i32> in(64000);
  for (i32& v : in) v = static_cast<i32>(rng.NextBounded(250)) * 1000 - 5000;
  auto out = RoundTripWithScheme(GetIntScheme(IntSchemeCode::kDict), in,
                                 DefaultConfig());
  EXPECT_EQ(out, in);
}

TEST(IntSchemeTest, FrequencyRoundTrip) {
  Random rng(3);
  std::vector<i32> in(64000, 42);  // dominant value with sparse exceptions
  for (int i = 0; i < 640; i++) {
    in[rng.NextBounded(64000)] = static_cast<i32>(rng.Next());
  }
  const IntScheme& freq = GetIntScheme(IntSchemeCode::kFrequency);
  CompressionConfig config = DefaultConfig();
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  size_t bytes = freq.Compress(in.data(), 64000, &compressed, ctx);
  EXPECT_LT(bytes, 64000 * 4 / 20);
  std::vector<i32> out(in.size() + kDecodeSlack);
  freq.Decompress(compressed.data(), 64000, out.data());
  out.resize(in.size());
  EXPECT_EQ(out, in);
}

TEST(IntSchemeTest, FrequencyAllSameValue) {
  std::vector<i32> in(1000, 5);
  EXPECT_EQ(RoundTripWithScheme(GetIntScheme(IntSchemeCode::kFrequency), in,
                                DefaultConfig()),
            in);
}

class IntPickerTest : public ::testing::TestWithParam<u64> {};

TEST_P(IntPickerTest, PropertyPickedSchemeRoundTrips) {
  // Property: whatever the picker chooses, the data round-trips exactly.
  Random rng(GetParam());
  std::vector<i32> in;
  u32 shape = static_cast<u32>(rng.NextBounded(6));
  u32 count = 1000 + static_cast<u32>(rng.NextBounded(64000));
  for (u32 i = 0; i < count; i++) {
    switch (shape) {
      case 0: in.push_back(static_cast<i32>(rng.Next())); break;
      case 1: in.push_back(42); break;
      case 2: in.push_back(static_cast<i32>(rng.NextBounded(10))); break;
      case 3: in.push_back(static_cast<i32>(i)); break;
      case 4:
        in.push_back(in.empty() || rng.NextBounded(5) != 0
                         ? static_cast<i32>(rng.NextBounded(100))
                         : in.back());
        break;
      case 5: in.push_back(rng.NextBounded(50) == 0 ? static_cast<i32>(rng.Next())
                                                    : 7);
        break;
    }
  }
  auto out = RoundTripPicked(in, DefaultConfig());
  EXPECT_EQ(out, in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntPickerTest,
                         ::testing::Range<u64>(100, 130));

TEST(IntPickerTest, OneValueChosenForConstantColumn) {
  std::vector<i32> in(64000, 99);
  IntSchemeCode chosen;
  RoundTripPicked(in, DefaultConfig(), &chosen);
  EXPECT_EQ(chosen, IntSchemeCode::kOneValue);
}

TEST(IntPickerTest, BitpackingChosenForDenseUniqueValues) {
  // Unique values in a small range: dict/RLE/frequency are not viable,
  // FOR + bit-packing wins.
  std::vector<i32> in;
  for (i32 i = 0; i < 64000; i++) in.push_back(1000000 + i);
  IntSchemeCode chosen;
  auto out = RoundTripPicked(in, DefaultConfig(), &chosen);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(chosen == IntSchemeCode::kBp128 || chosen == IntSchemeCode::kPfor)
      << "chosen=" << static_cast<int>(chosen);
}

TEST(IntPickerTest, RespectsSchemeMask) {
  CompressionConfig config = DefaultConfig();
  config.int_schemes = 1u << static_cast<u32>(IntSchemeCode::kUncompressed);
  std::vector<i32> in(5000, 3);
  IntSchemeCode chosen;
  auto out = RoundTripPicked(in, config, &chosen);
  EXPECT_EQ(chosen, IntSchemeCode::kUncompressed);
  EXPECT_EQ(out, in);
}

TEST(IntPickerTest, CascadeDepthZeroMeansUncompressed) {
  CompressionConfig config = DefaultConfig();
  config.max_cascade_depth = 0;
  std::vector<i32> in(1000, 3);
  IntSchemeCode chosen;
  RoundTripPicked(in, config, &chosen);
  EXPECT_EQ(chosen, IntSchemeCode::kUncompressed);
}

TEST(IntPickerTest, DeeperCascadesNeverHurt) {
  // Depth 3 output must be no larger than depth 1 on cascade-friendly data.
  std::vector<i32> in = MakeRuns(5, 64000, 200, 30);
  CompressionConfig shallow = DefaultConfig();
  shallow.max_cascade_depth = 1;
  CompressionConfig deep = DefaultConfig();
  deep.max_cascade_depth = 3;
  ByteBuffer shallow_out, deep_out;
  CompressionContext sctx{&shallow, shallow.max_cascade_depth};
  CompressionContext dctx{&deep, deep.max_cascade_depth};
  CompressInts(in.data(), 64000, &shallow_out, sctx);
  CompressInts(in.data(), 64000, &deep_out, dctx);
  EXPECT_LE(deep_out.size(), shallow_out.size());
  EXPECT_LT(deep_out.size(), 64000 * 4 / 10);
}

TEST(IntSchemeTest, ScalarAndSimdDecompressIdentically) {
  Random rng(6);
  std::vector<i32> in = MakeRuns(6, 64000, 20, 500);
  CompressionConfig config = DefaultConfig();
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressInts(in.data(), 64000, &compressed, ctx);
  std::vector<i32> simd(in.size() + kDecodeSlack), scalar(in.size() + kDecodeSlack);
  {
    ScopedSimd on(true);
    DecompressInts(compressed.data(), 64000, simd.data());
  }
  {
    ScopedSimd off(false);
    DecompressInts(compressed.data(), 64000, scalar.data());
  }
  simd.resize(in.size());
  scalar.resize(in.size());
  EXPECT_EQ(simd, in);
  EXPECT_EQ(scalar, in);
}

TEST(IntSchemeTest, TinyInputs) {
  for (u32 count : {1u, 2u, 3u, 7u}) {
    std::vector<i32> in;
    for (u32 i = 0; i < count; i++) in.push_back(static_cast<i32>(i * 3));
    EXPECT_EQ(RoundTripPicked(in, DefaultConfig()), in) << count;
  }
}

}  // namespace
}  // namespace btr
