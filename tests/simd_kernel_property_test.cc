// Property tests for the SIMD predicate kernels (btr/simd_scan.h and the
// per-scheme fast paths behind EvaluateExpr): over randomized blocks of
// every scheme shape, three engines must agree bit-for-bit —
//
//   1. EvaluateExpr with SIMD enabled (AVX2 kernels where built in),
//   2. EvaluateExpr with SimdPolicy forced off (scalar twins),
//   3. EvaluateExprDecoded, the decode-then-compare oracle.
//
// Edge cases are seeded deliberately: NaN / signed zero / infinities for
// doubles, INT32_MIN / INT32_MAX for ints, empty strings, and all-null
// blocks. A BTR_DISABLE_AVX2 build runs the same file with the vector
// bodies compiled out, proving the fallback end to end (CI parity job).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "btr/predicate.h"
#include "btr/simd_scan.h"
#include "util/random.h"
#include "util/simd.h"

namespace btr {
namespace {

constexpr i32 kIntMin = std::numeric_limits<i32>::min();
constexpr i32 kIntMax = std::numeric_limits<i32>::max();
const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

// Evaluates `expr` against the single-column block three ways and checks
// the selections agree; returns the SIMD-path result for extra checks.
EvalResult ExpectEnginesAgree(const CompressedColumn& compressed,
                              const Column& column, const PredicateExpr& expr,
                              const CompressionConfig& config,
                              const char* what) {
  DecodedBlock decoded;
  EvalResult simd_result, scalar_result;
  u32 base_row = 0;
  for (size_t b = 0; b < compressed.blocks.size(); b++) {
    const u8* block = compressed.blocks[b].data();
    auto block_of = [&](const std::string&) -> const u8* { return block; };
    DecompressBlock(block, &decoded, config);
    auto decoded_of = [&](const std::string&) -> const DecodedBlock* {
      return &decoded;
    };

    EvalResult vec, scalar;
    {
      ScopedSimd on(true);
      vec = EvaluateExpr(expr, decoded.count, block_of, config, nullptr);
    }
    {
      ScopedSimd off(false);
      scalar = EvaluateExpr(expr, decoded.count, block_of, config, nullptr);
    }
    EvalResult oracle = EvaluateExprDecoded(expr, decoded.count, decoded_of);

    EXPECT_EQ(vec.pass.ToVector(), scalar.pass.ToVector())
        << what << ": SIMD vs scalar pass differ, block " << b;
    EXPECT_EQ(vec.pass.ToVector(), oracle.pass.ToVector())
        << what << ": compressed vs decoded pass differ, block " << b;
    EXPECT_EQ(vec.unknown.ToVector(), oracle.unknown.ToVector())
        << what << ": compressed vs decoded unknown differ, block " << b;

    vec.pass.ForEach([&](u32 i) { simd_result.pass.Add(base_row + i); });
    vec.unknown.ForEach([&](u32 i) { simd_result.unknown.Add(base_row + i); });
    base_row += decoded.count;
  }
  EXPECT_EQ(base_row, column.size()) << what;
  return simd_result;
}

// --- integer schemes ---------------------------------------------------------

// Data shapes that make the cascade pick each root scheme when the config
// mask allows only {target, uncompressed}.
enum class IntShape { kOneValue, kRle, kDict, kFrequency, kBp128, kRaw };

Column MakeIntColumn(IntShape shape, Random* rng, u32 rows, bool with_nulls) {
  Column column("c", ColumnType::kInteger);
  i32 base = static_cast<i32>(rng->NextRange(-1000, 1000));
  for (u32 i = 0; i < rows; i++) {
    if (with_nulls && rng->NextBounded(16) == 0) {
      column.AppendNull();
      continue;
    }
    switch (shape) {
      case IntShape::kOneValue:
        column.AppendInt(base);
        break;
      case IntShape::kRle:
        column.AppendInt(base + static_cast<i32>((i / 100) % 7));
        break;
      case IntShape::kDict:
        column.AppendInt(base + static_cast<i32>(rng->NextBounded(10)) * 50);
        break;
      case IntShape::kFrequency:
        column.AppendInt(rng->NextBounded(10) == 0
                             ? base + static_cast<i32>(rng->NextBounded(5000))
                             : base);
        break;
      case IntShape::kBp128:
        column.AppendInt(base + static_cast<i32>(rng->NextBounded(200)));
        break;
      case IntShape::kRaw:
        // Full-range values, including the extremes sometimes.
        switch (rng->NextBounded(20)) {
          case 0: column.AppendInt(kIntMin); break;
          case 1: column.AppendInt(kIntMax); break;
          default:
            column.AppendInt(static_cast<i32>(rng->Next()));
        }
        break;
    }
  }
  return column;
}

CompressionConfig IntConfig(IntSchemeCode scheme) {
  CompressionConfig config;
  config.int_schemes =
      (1u << static_cast<u32>(scheme)) |
      (1u << static_cast<u32>(IntSchemeCode::kUncompressed));
  return config;
}

std::vector<PredicateExpr> IntProbes(Random* rng, i32 lo_hint, i32 hi_hint) {
  std::vector<PredicateExpr> probes;
  auto value = [&]() {
    return static_cast<i32>(rng->NextRange(lo_hint - 50, hi_hint + 50));
  };
  probes.push_back(Predicate::EqualsInt("c", value()));
  probes.push_back(Predicate::CompareInt("c", CompareOp::kLt, value()));
  probes.push_back(Predicate::CompareInt("c", CompareOp::kLe, value()));
  probes.push_back(Predicate::CompareInt("c", CompareOp::kGt, value()));
  probes.push_back(Predicate::CompareInt("c", CompareOp::kGe, value()));
  i32 a = value(), b = value();
  probes.push_back(Predicate::BetweenInt("c", std::min(a, b), std::max(a, b)));
  probes.push_back(Predicate::InInt("c", {value(), value(), value()}));
  // Operand extremes: x < INT32_MIN and x > INT32_MAX are unsatisfiable;
  // x <= INT32_MAX matches every non-null row.
  probes.push_back(Predicate::CompareInt("c", CompareOp::kLt, kIntMin));
  probes.push_back(Predicate::CompareInt("c", CompareOp::kGt, kIntMax));
  probes.push_back(Predicate::CompareInt("c", CompareOp::kLe, kIntMax));
  probes.push_back(Predicate::BetweenInt("c", kIntMin, kIntMax));
  return probes;
}

TEST(SimdKernelPropertyTest, IntSchemesAgreeAcrossEngines) {
  struct Case {
    IntShape shape;
    IntSchemeCode scheme;
  };
  const Case cases[] = {
      {IntShape::kOneValue, IntSchemeCode::kOneValue},
      {IntShape::kRle, IntSchemeCode::kRle},
      {IntShape::kDict, IntSchemeCode::kDict},
      {IntShape::kFrequency, IntSchemeCode::kFrequency},
      {IntShape::kBp128, IntSchemeCode::kBp128},
      {IntShape::kRaw, IntSchemeCode::kUncompressed},
  };
  Random rng(101);
  for (const Case& c : cases) {
    CompressionConfig config = IntConfig(c.scheme);
    for (int trial = 0; trial < 6; trial++) {
      u32 rows = 500 + static_cast<u32>(rng.NextBounded(20000));
      Column column = MakeIntColumn(c.shape, &rng, rows, trial % 2 == 1);
      CompressedColumn compressed = CompressColumn(column, config);
      const char* name = IntSchemeName(c.scheme);
      for (const PredicateExpr& probe : IntProbes(&rng, -1100, 6200)) {
        ExpectEnginesAgree(compressed, column, probe, config, name);
      }
    }
  }
}

TEST(SimdKernelPropertyTest, IntExtremesRoundTripEveryOp) {
  // Values at INT32_MIN / INT32_MAX stored in the block itself.
  CompressionConfig config;
  Column column("c", ColumnType::kInteger);
  Random rng(7);
  for (u32 i = 0; i < 3000; i++) {
    switch (rng.NextBounded(4)) {
      case 0: column.AppendInt(kIntMin); break;
      case 1: column.AppendInt(kIntMax); break;
      case 2: column.AppendNull(); break;
      default: column.AppendInt(static_cast<i32>(rng.Next()));
    }
  }
  CompressedColumn compressed = CompressColumn(column, config);
  std::vector<PredicateExpr> probes = {
      Predicate::EqualsInt("c", kIntMin),
      Predicate::EqualsInt("c", kIntMax),
      Predicate::CompareInt("c", CompareOp::kLe, kIntMin),
      Predicate::CompareInt("c", CompareOp::kGe, kIntMax),
      Predicate::BetweenInt("c", kIntMin, kIntMin),
      Predicate::InInt("c", {kIntMin, kIntMax, 0}),
  };
  for (const PredicateExpr& probe : probes) {
    ExpectEnginesAgree(compressed, column, probe, config, "int extremes");
  }
}

// --- double schemes ----------------------------------------------------------

enum class DoubleShape { kOneValue, kRle, kDict, kFrequency, kRaw };

Column MakeDoubleColumn(DoubleShape shape, Random* rng, u32 rows,
                        bool with_nulls) {
  Column column("d", ColumnType::kDouble);
  double base = rng->NextDouble() * 100 - 50;
  // Special values seeded into every shape's palette.
  const double specials[] = {kNaN, -kNaN, 0.0, -0.0, kInf, -kInf};
  for (u32 i = 0; i < rows; i++) {
    if (with_nulls && rng->NextBounded(16) == 0) {
      column.AppendNull();
      continue;
    }
    if (rng->NextBounded(32) == 0) {
      column.AppendDouble(specials[rng->NextBounded(6)]);
      continue;
    }
    switch (shape) {
      case DoubleShape::kOneValue:
        column.AppendDouble(base);
        break;
      case DoubleShape::kRle:
        column.AppendDouble(base + static_cast<double>((i / 100) % 5));
        break;
      case DoubleShape::kDict:
        column.AppendDouble(base + static_cast<double>(rng->NextBounded(8)));
        break;
      case DoubleShape::kFrequency:
        column.AppendDouble(rng->NextBounded(10) == 0
                                ? rng->NextDouble() * 1000
                                : base);
        break;
      case DoubleShape::kRaw:
        column.AppendDouble(rng->NextDouble() * 2000 - 1000);
        break;
    }
  }
  return column;
}

TEST(SimdKernelPropertyTest, DoubleSchemesAgreeAcrossEngines) {
  struct Case {
    DoubleShape shape;
    DoubleSchemeCode scheme;
  };
  const Case cases[] = {
      {DoubleShape::kOneValue, DoubleSchemeCode::kOneValue},
      {DoubleShape::kRle, DoubleSchemeCode::kRle},
      {DoubleShape::kDict, DoubleSchemeCode::kDict},
      {DoubleShape::kFrequency, DoubleSchemeCode::kFrequency},
      {DoubleShape::kRaw, DoubleSchemeCode::kUncompressed},
  };
  Random rng(202);
  for (const Case& c : cases) {
    CompressionConfig config;
    config.double_schemes =
        (1u << static_cast<u32>(c.scheme)) |
        (1u << static_cast<u32>(DoubleSchemeCode::kUncompressed));
    for (int trial = 0; trial < 6; trial++) {
      u32 rows = 500 + static_cast<u32>(rng.NextBounded(15000));
      Column column = MakeDoubleColumn(c.shape, &rng, rows, trial % 2 == 1);
      CompressedColumn compressed = CompressColumn(column, config);
      const char* name = DoubleSchemeName(c.scheme);

      std::vector<PredicateExpr> probes;
      double v = rng.NextDouble() * 120 - 60;
      probes.push_back(Predicate::EqualsDouble("d", v));
      probes.push_back(Predicate::CompareDouble("d", CompareOp::kLt, v));
      probes.push_back(Predicate::CompareDouble("d", CompareOp::kGe, v));
      probes.push_back(Predicate::BetweenDouble("d", v - 10, v + 10));
      // NaN probes: ordered ops never match, bit-equality matches stored
      // NaNs of identical payload.
      probes.push_back(Predicate::EqualsDouble("d", kNaN));
      probes.push_back(Predicate::CompareDouble("d", CompareOp::kLt, kNaN));
      probes.push_back(Predicate::InDouble("d", {kNaN, 0.0, v}));
      // Signed zero: 0.0 and -0.0 are distinct bit patterns for kEq but
      // equal for ordered comparisons.
      probes.push_back(Predicate::EqualsDouble("d", -0.0));
      probes.push_back(Predicate::BetweenDouble("d", -0.0, 0.0));
      probes.push_back(Predicate::BetweenDouble("d", -kInf, kInf));
      for (const PredicateExpr& probe : probes) {
        ExpectEnginesAgree(compressed, column, probe, config, name);
      }
    }
  }
}

// --- string schemes ----------------------------------------------------------

TEST(SimdKernelPropertyTest, StringSchemesAgreeAcrossEngines) {
  Random rng(303);
  const char* palette[] = {"",          "berlin",  "munich", "bonn",
                           "hamburg",   "a",       "zz",     "münchen",
                           "new york",  "berlin "};
  for (u32 scheme_mask :
       {(1u << static_cast<u32>(StringSchemeCode::kOneValue)) | 1u,
        (1u << static_cast<u32>(StringSchemeCode::kDict)) | 1u,
        1u /* uncompressed only */,
        (1u << static_cast<u32>(StringSchemeCode::kFsst)) | 1u}) {
    CompressionConfig config;
    config.string_schemes = scheme_mask;
    for (int trial = 0; trial < 4; trial++) {
      bool one_value = scheme_mask ==
                       ((1u << static_cast<u32>(StringSchemeCode::kOneValue)) | 1u);
      u32 rows = 500 + static_cast<u32>(rng.NextBounded(8000));
      Column column("s", ColumnType::kString);
      const char* only = palette[rng.NextBounded(10)];
      for (u32 i = 0; i < rows; i++) {
        if (trial % 2 == 1 && rng.NextBounded(16) == 0) {
          column.AppendNull();
        } else {
          column.AppendString(one_value ? only : palette[rng.NextBounded(10)]);
        }
      }
      CompressedColumn compressed = CompressColumn(column, config);

      std::vector<PredicateExpr> probes;
      probes.push_back(Predicate::EqualsString("s", "bonn"));
      probes.push_back(Predicate::EqualsString("s", ""));  // empty string
      probes.push_back(Predicate::CompareString("s", CompareOp::kLt, "c"));
      probes.push_back(Predicate::CompareString("s", CompareOp::kGe, "m"));
      probes.push_back(Predicate::BetweenString("s", "a", "c"));
      probes.push_back(Predicate::InString("s", {"", "munich", "paris"}));
      for (const PredicateExpr& probe : probes) {
        ExpectEnginesAgree(compressed, column, probe, config, "string");
      }
    }
  }
}

// --- all-null blocks ---------------------------------------------------------

TEST(SimdKernelPropertyTest, AllNullBlocksAreAllUnknown) {
  CompressionConfig config;
  const ColumnType types[] = {ColumnType::kInteger, ColumnType::kDouble,
                              ColumnType::kString};
  for (ColumnType type : types) {
    Column column("c", type);
    for (u32 i = 0; i < 2000; i++) column.AppendNull();
    CompressedColumn compressed = CompressColumn(column, config);

    PredicateExpr probe;
    switch (type) {
      case ColumnType::kInteger:
        probe = Predicate::BetweenInt("c", kIntMin, kIntMax);
        break;
      case ColumnType::kDouble:
        probe = Predicate::CompareDouble("c", CompareOp::kGe, -kInf);
        break;
      case ColumnType::kString:
        probe = Predicate::CompareString("c", CompareOp::kGe, "");
        break;
    }
    EvalResult r =
        ExpectEnginesAgree(compressed, column, probe, config, "all-null");
    EXPECT_EQ(r.pass.Cardinality(), 0u);
    EXPECT_EQ(r.unknown.Cardinality(), 2000u);
  }
}

// --- raw kernel equivalence --------------------------------------------------

// Drives the simd:: kernels directly (not through block evaluation) on
// adversarial buffers: unaligned counts, values at the extremes, sets of
// every size class (broadcast-compare vs binary-search).
TEST(SimdKernelPropertyTest, RawKernelsMatchScalarTwins) {
  Random rng(404);
  for (int trial = 0; trial < 40; trial++) {
    u32 count = 1 + static_cast<u32>(rng.NextBounded(3000));
    std::vector<i32> values(count);
    for (i32& v : values) {
      switch (rng.NextBounded(12)) {
        case 0: v = kIntMin; break;
        case 1: v = kIntMax; break;
        default: v = static_cast<i32>(rng.NextRange(-500, 500));
      }
    }
    i32 a = static_cast<i32>(rng.NextRange(-600, 600));
    i32 b = static_cast<i32>(rng.NextRange(-600, 600));
    i32 lo = std::min(a, b), hi = std::max(a, b);

    RoaringBitmap vec, scalar;
    {
      ScopedSimd on(true);
      simd::SelectI32Range(values.data(), count, 0, lo, hi, &vec);
    }
    {
      ScopedSimd off(false);
      simd::SelectI32Range(values.data(), count, 0, lo, hi, &scalar);
    }
    EXPECT_EQ(vec.ToVector(), scalar.ToVector())
        << "range [" << lo << ", " << hi << "], count " << count;

    // Set kernel across the small-set / binary-search boundary.
    u32 set_size = 1 + static_cast<u32>(rng.NextBounded(24));
    std::vector<i32> set;
    for (u32 i = 0; i < set_size; i++) {
      set.push_back(static_cast<i32>(rng.NextRange(-600, 600)));
    }
    PredicateExpr in = Predicate::InInt("c", set);  // sorts + dedupes
    RoaringBitmap vec_set, scalar_set;
    {
      ScopedSimd on(true);
      simd::SelectI32Set(values.data(), count, 0, in.int_set, &vec_set);
    }
    {
      ScopedSimd off(false);
      simd::SelectI32Set(values.data(), count, 0, in.int_set, &scalar_set);
    }
    EXPECT_EQ(vec_set.ToVector(), scalar_set.ToVector())
        << "set size " << in.int_set.size() << ", count " << count;
  }

  // Double range kernel with strictness flags and NaN traffic.
  for (int trial = 0; trial < 20; trial++) {
    u32 count = 1 + static_cast<u32>(rng.NextBounded(2000));
    std::vector<double> values(count);
    for (double& v : values) {
      switch (rng.NextBounded(10)) {
        case 0: v = kNaN; break;
        case 1: v = kInf; break;
        case 2: v = -kInf; break;
        case 3: v = -0.0; break;
        default: v = rng.NextDouble() * 200 - 100;
      }
    }
    double lo = rng.NextDouble() * 200 - 100;
    double hi = lo + rng.NextDouble() * 50;
    bool lo_strict = rng.NextBounded(2) == 0;
    bool hi_strict = rng.NextBounded(2) == 0;
    RoaringBitmap vec, scalar;
    {
      ScopedSimd on(true);
      simd::SelectF64Range(values.data(), count, 0, lo, hi, lo_strict,
                           hi_strict, &vec);
    }
    {
      ScopedSimd off(false);
      simd::SelectF64Range(values.data(), count, 0, lo, hi, lo_strict,
                           hi_strict, &scalar);
    }
    EXPECT_EQ(vec.ToVector(), scalar.ToVector())
        << "f64 range trial " << trial;
  }
}

// SelectBp128Range's frame-envelope telemetry must account for every
// miniblock, and a clustered block must actually prune/accept some of
// them without unpacking (the ByteSlice-style early exit).
TEST(SimdKernelPropertyTest, Bp128EnvelopeStatsAccountForAllMiniblocks) {
  CompressionConfig config = IntConfig(IntSchemeCode::kBp128);
  Column column("c", ColumnType::kInteger);
  for (u32 i = 0; i < 40000; i++) {
    column.AppendInt(static_cast<i32>(i / 4));  // clustered, Bp128-friendly
  }
  CompressedColumn compressed = CompressColumn(column, config);
  ASSERT_EQ(PeekBlockScheme(compressed.blocks[0].data()),
            static_cast<u8>(IntSchemeCode::kBp128));

  // ~1% selective range in the middle of the block.
  PredicateExpr probe = Predicate::BetweenInt("c", 5000, 5099);
  EvalResult r = ExpectEnginesAgree(compressed, column, probe, config,
                                    "bp128 envelope");
  EXPECT_EQ(r.pass.Cardinality(), 400u);
  EXPECT_TRUE(HasFastPath(compressed.blocks[0].data(), probe));
}

}  // namespace
}  // namespace btr
