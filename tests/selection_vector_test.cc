// Tests for Roaring set algebra and PredicateExpr selection vectors,
// including multi-column expression combination over one table.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "btr/predicate.h"
#include "btr/relation.h"
#include "datagen/archetypes.h"
#include "util/random.h"

namespace btr {
namespace {

TEST(RoaringAlgebraTest, AndOrAndNotAgainstReference) {
  Random rng(1);
  RoaringBitmap a, b;
  std::set<u32> ra, rb;
  for (int i = 0; i < 8000; i++) {
    u32 v = static_cast<u32>(rng.NextBounded(1u << 17));
    a.Add(v);
    ra.insert(v);
    v = static_cast<u32>(rng.NextBounded(1u << 17));
    b.Add(v);
    rb.insert(v);
  }
  // Reference results.
  std::set<u32> r_and, r_or, r_andnot;
  for (u32 v : ra) {
    if (rb.count(v)) r_and.insert(v);
    if (!rb.count(v)) r_andnot.insert(v);
  }
  r_or = ra;
  r_or.insert(rb.begin(), rb.end());

  auto check = [](const RoaringBitmap& got, const std::set<u32>& want) {
    std::vector<u32> got_values = got.ToVector();
    std::vector<u32> want_values(want.begin(), want.end());
    EXPECT_EQ(got_values, want_values);
  };
  check(RoaringBitmap::And(a, b), r_and);
  check(RoaringBitmap::Or(a, b), r_or);
  check(RoaringBitmap::AndNot(a, b), r_andnot);
}

TEST(RoaringAlgebraTest, EmptyOperands) {
  RoaringBitmap empty, some;
  some.Add(3);
  some.Add(99999);
  EXPECT_EQ(RoaringBitmap::And(empty, some).Cardinality(), 0u);
  EXPECT_EQ(RoaringBitmap::Or(empty, some).Cardinality(), 2u);
  EXPECT_EQ(RoaringBitmap::AndNot(some, empty).Cardinality(), 2u);
  EXPECT_EQ(RoaringBitmap::AndNot(empty, some).Cardinality(), 0u);
}

RoaringBitmap ReferenceSelectInt(const ByteBuffer& block, i32 value,
                                 const CompressionConfig& config) {
  DecodedBlock decoded;
  DecompressBlock(block.data(), &decoded, config);
  RoaringBitmap out;
  for (u32 i = 0; i < decoded.count; i++) {
    if (!decoded.IsNull(i) && decoded.ints[i] == value) out.Add(i);
  }
  return out;
}

TEST(SelectEqualsTest, IntSchemesMatchReference) {
  CompressionConfig config;
  for (auto archetype : datagen::kAllIntArchetypes) {
    std::vector<i32> data = datagen::MakeInts(archetype, 50000, 7);
    ByteBuffer block;
    CompressIntBlock(data.data(), nullptr, 50000, &block, config);
    for (i32 probe : {data[0], data[25000], 0, -99}) {
      RoaringBitmap got =
          SelectMatches(block.data(), Predicate::EqualsInt("c", probe), config);
      RoaringBitmap want = ReferenceSelectInt(block, probe, config);
      EXPECT_EQ(got.ToVector(), want.ToVector())
          << datagen::IntArchetypeName(archetype) << " probe " << probe;
      EXPECT_EQ(got.Cardinality(),
                CountMatches(block.data(), Predicate::EqualsInt("c", probe),
                             config));
    }
  }
}

TEST(SelectEqualsTest, FrequencyComplementPath) {
  // Dominant-value probes exercise the AndNot(all, exceptions) path.
  std::vector<i32> data(64000, 7);
  Random rng(2);
  for (int i = 0; i < 500; i++) {
    data[rng.NextBounded(64000)] = static_cast<i32>(rng.NextBounded(100)) + 10;
  }
  CompressionConfig config;
  config.int_schemes = (1u << static_cast<u32>(IntSchemeCode::kUncompressed)) |
                       (1u << static_cast<u32>(IntSchemeCode::kFrequency)) |
                       (1u << static_cast<u32>(IntSchemeCode::kBp128));
  ByteBuffer block;
  BlockCompressionInfo info;
  CompressIntBlock(data.data(), nullptr, 64000, &block, config, &info);
  ASSERT_EQ(static_cast<IntSchemeCode>(info.root_scheme),
            IntSchemeCode::kFrequency);
  RoaringBitmap got =
      SelectMatches(block.data(), Predicate::EqualsInt("c", 7), config);
  RoaringBitmap want = ReferenceSelectInt(block, 7, config);
  EXPECT_EQ(got.ToVector(), want.ToVector());
}

TEST(SelectEqualsTest, MultiPredicateAcrossColumns) {
  // WHERE city = 'PHOENIX' AND amount = 0.0 evaluated block-wise with
  // selection vectors, verified against row-wise evaluation.
  Relation table("t");
  Column& city = table.AddColumn("city", ColumnType::kString);
  Column& amount = table.AddColumn("amount", ColumnType::kDouble);
  Random rng(3);
  const char* cities[] = {"PHOENIX", "RALEIGH", "BERLIN"};
  constexpr u32 kRows = 30000;
  for (u32 i = 0; i < kRows; i++) {
    city.AppendString(cities[rng.NextBounded(3)]);
    amount.AppendDouble(rng.NextBounded(4) == 0
                            ? 0.0
                            : static_cast<double>(rng.NextBounded(100)));
  }
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(table, config);
  PredicateExpr expr =
      PredicateExpr::And(Predicate::EqualsString("city", "PHOENIX"),
                         Predicate::EqualsDouble("amount", 0.0));
  auto block_of = [&](const std::string& name) -> const u8* {
    return name == "city" ? compressed.columns[0].blocks[0].data()
                          : compressed.columns[1].blocks[0].data();
  };
  EvalResult evaluated = EvaluateExpr(expr, kRows, block_of, config, nullptr);
  RoaringBitmap selection = std::move(evaluated.pass);

  u32 reference = 0;
  RoaringBitmap reference_bitmap;
  for (u32 i = 0; i < kRows; i++) {
    if (city.GetString(i) == "PHOENIX" && amount.doubles()[i] == 0.0) {
      reference++;
      reference_bitmap.Add(i);
    }
  }
  EXPECT_EQ(selection.Cardinality(), reference);
  EXPECT_EQ(selection.ToVector(), reference_bitmap.ToVector());
  EXPECT_GT(reference, 1000u);  // the predicate actually selects something
}

TEST(SelectEqualsTest, NullsExcluded) {
  std::vector<i32> data(5000, 3);
  std::vector<u8> nulls(5000, 0);
  for (int i = 0; i < 5000; i += 5) {
    data[i] = 0;
    nulls[i] = 1;
  }
  CompressionConfig config;
  ByteBuffer block;
  CompressIntBlock(data.data(), nulls.data(), 5000, &block, config);
  EXPECT_EQ(
      SelectMatches(block.data(), Predicate::EqualsInt("c", 0), config)
          .Cardinality(),
      0u);
  RoaringBitmap threes =
      SelectMatches(block.data(), Predicate::EqualsInt("c", 3), config);
  EXPECT_EQ(threes.Cardinality(), 4000u);
  threes.ForEach([&](u32 position) { EXPECT_NE(position % 5, 0u); });
}

}  // namespace
}  // namespace btr
