// Unit tests for the checksum-verified block cache (exec/block_cache.h):
// admission requires the payload to hash to the header CRC32C, entries are
// keyed by exact GET identity (key, offset, length), and each shard evicts
// LRU-first under its byte budget. The concurrent test doubles as the
// TSan workload in CI.
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/block_cache.h"
#include "util/buffer.h"
#include "util/crc32c.h"

namespace btr::exec {
namespace {

std::vector<u8> MakePayload(size_t size, u8 salt) {
  std::vector<u8> payload(size);
  for (size_t i = 0; i < size; i++) {
    payload[i] = static_cast<u8>((i * 31 + salt) & 0xFF);
  }
  return payload;
}

TEST(BlockCacheTest, RoundTripReturnsTheExactBytes) {
  BlockCache cache;
  std::vector<u8> payload = MakePayload(4096, 7);
  u32 crc = Crc32c(payload.data(), payload.size());

  ByteBuffer out;
  EXPECT_FALSE(cache.Lookup("lake/t.0.btr", 128, payload.size(), &out));
  ASSERT_TRUE(cache.Insert("lake/t.0.btr", 128, payload.size(), payload.data(),
                           payload.size(), crc));
  ASSERT_TRUE(cache.Lookup("lake/t.0.btr", 128, payload.size(), &out));
  ASSERT_EQ(out.size(), payload.size());
  EXPECT_EQ(0, std::memcmp(out.data(), payload.data(), payload.size()));

  BlockCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, payload.size());
}

TEST(BlockCacheTest, CorruptPayloadIsRefusedAtAdmission) {
  BlockCache cache;
  std::vector<u8> payload = MakePayload(1024, 3);
  u32 crc = Crc32c(payload.data(), payload.size());
  payload[100] ^= 0x40;  // single bit flip after the checksum was taken

  EXPECT_FALSE(cache.Insert("k", 0, payload.size(), payload.data(),
                            payload.size(), crc));
  ByteBuffer out;
  EXPECT_FALSE(cache.Lookup("k", 0, payload.size(), &out))
      << "a corrupt payload must never become a hit";
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(BlockCacheTest, KeyIdentityIncludesOffsetAndLength) {
  BlockCache cache;
  std::vector<u8> a = MakePayload(256, 1);
  std::vector<u8> b = MakePayload(512, 2);
  ASSERT_TRUE(cache.Insert("k", 0, a.size(), a.data(), a.size(),
                           Crc32c(a.data(), a.size())));
  ASSERT_TRUE(cache.Insert("k", 256, b.size(), b.data(), b.size(),
                           Crc32c(b.data(), b.size())));

  ByteBuffer out;
  EXPECT_FALSE(cache.Lookup("k", 0, 512, &out)) << "different length";
  EXPECT_FALSE(cache.Lookup("k", 128, 256, &out)) << "different offset";
  EXPECT_FALSE(cache.Lookup("other", 0, 256, &out)) << "different key";
  ASSERT_TRUE(cache.Lookup("k", 0, 256, &out));
  EXPECT_EQ(0, std::memcmp(out.data(), a.data(), a.size()));
  ASSERT_TRUE(cache.Lookup("k", 256, 512, &out));
  EXPECT_EQ(0, std::memcmp(out.data(), b.data(), b.size()));
}

TEST(BlockCacheTest, ReinsertReplacesInsteadOfDoubleCounting) {
  BlockCache cache;
  std::vector<u8> payload = MakePayload(2048, 9);
  u32 crc = Crc32c(payload.data(), payload.size());
  ASSERT_TRUE(
      cache.Insert("k", 0, 2048, payload.data(), payload.size(), crc));
  ASSERT_TRUE(
      cache.Insert("k", 0, 2048, payload.data(), payload.size(), crc));
  BlockCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, payload.size());
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedUnderTheShardBudget) {
  // One shard so LRU order is global and deterministic; room for exactly
  // two payloads.
  BlockCacheConfig config;
  config.shards = 1;
  config.capacity_bytes = 2048;
  BlockCache cache(config);

  std::vector<u8> p0 = MakePayload(1024, 0);
  std::vector<u8> p1 = MakePayload(1024, 1);
  std::vector<u8> p2 = MakePayload(1024, 2);
  ASSERT_TRUE(cache.Insert("k0", 0, 1024, p0.data(), p0.size(),
                           Crc32c(p0.data(), p0.size())));
  ASSERT_TRUE(cache.Insert("k1", 0, 1024, p1.data(), p1.size(),
                           Crc32c(p1.data(), p1.size())));

  // Touch k0 so k1 becomes the LRU victim.
  ByteBuffer out;
  ASSERT_TRUE(cache.Lookup("k0", 0, 1024, &out));
  ASSERT_TRUE(cache.Insert("k2", 0, 1024, p2.data(), p2.size(),
                           Crc32c(p2.data(), p2.size())));

  EXPECT_TRUE(cache.Lookup("k0", 0, 1024, &out)) << "recently used survives";
  EXPECT_FALSE(cache.Lookup("k1", 0, 1024, &out)) << "LRU entry evicted";
  EXPECT_TRUE(cache.Lookup("k2", 0, 1024, &out));
  EXPECT_LE(cache.GetStats().bytes, config.capacity_bytes);
}

TEST(BlockCacheTest, OversizedAndEmptyPayloadsAreRejected) {
  BlockCacheConfig config;
  config.shards = 4;
  config.capacity_bytes = 4096;  // 1 KiB per shard
  BlockCache cache(config);

  std::vector<u8> big = MakePayload(2048, 5);  // exceeds any shard budget
  EXPECT_FALSE(cache.Insert("k", 0, big.size(), big.data(), big.size(),
                            Crc32c(big.data(), big.size())));
  EXPECT_FALSE(cache.Insert("k", 0, 0, big.data(), 0, 0));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(BlockCacheTest, EraseDropsTheEntry) {
  BlockCache cache;
  std::vector<u8> payload = MakePayload(512, 4);
  ASSERT_TRUE(cache.Insert("k", 64, 512, payload.data(), payload.size(),
                           Crc32c(payload.data(), payload.size())));
  cache.Erase("k", 64, 512);
  ByteBuffer out;
  EXPECT_FALSE(cache.Lookup("k", 64, 512, &out));
  EXPECT_EQ(cache.GetStats().bytes, 0u);
  cache.Erase("k", 64, 512);  // double erase is a no-op
}

// Concurrency hammer: many threads inserting, looking up and erasing
// overlapping keys on a small cache (constant eviction). Run under TSan in
// CI; correctness here is "no data race, no crash, every hit verifies".
TEST(BlockCacheTest, ConcurrentHammerStaysConsistent) {
  BlockCacheConfig config;
  config.shards = 4;
  config.capacity_bytes = 64 * 1024;
  BlockCache cache(config);

  constexpr u32 kThreads = 4;
  constexpr u32 kOpsPerThread = 400;
  constexpr u32 kKeys = 16;

  std::vector<std::vector<u8>> payloads;
  std::vector<u32> crcs;
  for (u32 k = 0; k < kKeys; k++) {
    payloads.push_back(MakePayload(1024 + 64 * k, static_cast<u8>(k)));
    crcs.push_back(Crc32c(payloads[k].data(), payloads[k].size()));
  }

  std::vector<std::thread> threads;
  for (u32 t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      ByteBuffer out;
      for (u32 i = 0; i < kOpsPerThread; i++) {
        u32 k = (i * 7 + t) % kKeys;
        const std::vector<u8>& payload = payloads[k];
        std::string key = "obj" + std::to_string(k);
        switch (i % 3) {
          case 0:
            cache.Insert(key, k, payload.size(), payload.data(),
                         payload.size(), crcs[k]);
            break;
          case 1:
            if (cache.Lookup(key, k, payload.size(), &out)) {
              ASSERT_EQ(out.size(), payload.size());
              EXPECT_EQ(Crc32c(out.data(), out.size()), crcs[k])
                  << "a hit must always return verified bytes";
            }
            break;
          case 2:
            if (i % 30 == 2) cache.Erase(key, k, payload.size());
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  BlockCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, config.capacity_bytes);
  ByteBuffer out;
  for (u32 k = 0; k < kKeys; k++) {
    if (cache.Lookup("obj" + std::to_string(k), k, payloads[k].size(), &out)) {
      EXPECT_EQ(Crc32c(out.data(), out.size()), crcs[k]);
    }
  }
}

}  // namespace
}  // namespace btr::exec
