// Randomized end-to-end round-trip tests ("fuzz-lite"): many seeds, mixed
// schemas, adversarial value distributions, NULL patterns, varying block
// counts and cascade depths. Every relation must survive
// compress -> serialize -> deserialize -> decompress bit-exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "btr/btrblocks.h"
#include "util/random.h"

namespace btr {
namespace {

Relation RandomRelation(u64 seed) {
  Random rng(seed);
  Relation relation("fuzz_" + std::to_string(seed));
  u32 column_count = 1 + static_cast<u32>(rng.NextBounded(6));
  u32 rows = 1 + static_cast<u32>(rng.NextBounded(150000));
  for (u32 c = 0; c < column_count; c++) {
    ColumnType type = static_cast<ColumnType>(rng.NextBounded(3));
    Column& column = relation.AddColumn("c" + std::to_string(c), type);
    u32 distribution = static_cast<u32>(rng.NextBounded(5));
    double null_rate = rng.NextBounded(3) == 0 ? 0.1 : 0.0;
    for (u32 r = 0; r < rows; r++) {
      if (null_rate > 0 && rng.NextDouble() < null_rate) {
        column.AppendNull();
        continue;
      }
      switch (type) {
        case ColumnType::kInteger: {
          i32 v = 0;
          switch (distribution) {
            case 0: v = static_cast<i32>(rng.Next()); break;
            case 1: v = static_cast<i32>(rng.NextBounded(4)); break;
            case 2: v = 42; break;
            case 3: v = static_cast<i32>(r / 100); break;
            case 4: v = INT32_MIN + static_cast<i32>(rng.NextBounded(3)); break;
          }
          column.AppendInt(v);
          break;
        }
        case ColumnType::kDouble: {
          double v = 0;
          switch (distribution) {
            case 0: {
              u64 bits = rng.Next();
              std::memcpy(&v, &bits, 8);
              break;
            }
            case 1: v = static_cast<double>(rng.NextBounded(100)) / 4.0; break;
            case 2: v = -0.0; break;
            case 3: v = static_cast<double>(r % 7) * 1e-3; break;
            case 4: v = rng.NextDouble() * 1e308; break;
          }
          column.AppendDouble(v);
          break;
        }
        case ColumnType::kString: {
          std::string s;
          switch (distribution) {
            case 0: {
              u32 len = static_cast<u32>(rng.NextBounded(40));
              for (u32 i = 0; i < len; i++) {
                s.push_back(static_cast<char>(rng.Next() & 0xFF));
              }
              break;
            }
            case 1: s = "constant value"; break;
            case 2: s = "id-" + std::to_string(rng.NextBounded(10)); break;
            case 3: break;  // empty strings
            case 4: s = std::string(1 + rng.NextBounded(300), 'x'); break;
          }
          column.AppendString(s);
          break;
        }
      }
    }
  }
  return relation;
}

void ExpectEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.columns().size(), b.columns().size());
  ASSERT_EQ(a.row_count(), b.row_count());
  for (size_t c = 0; c < a.columns().size(); c++) {
    const Column& x = a.columns()[c];
    const Column& y = b.columns()[c];
    ASSERT_EQ(x.type(), y.type());
    for (u32 r = 0; r < a.row_count(); r++) {
      ASSERT_EQ(x.IsNull(r), y.IsNull(r)) << "col " << c << " row " << r;
      switch (x.type()) {
        case ColumnType::kInteger:
          ASSERT_EQ(x.ints()[r], y.ints()[r]) << "col " << c << " row " << r;
          break;
        case ColumnType::kDouble: {
          u64 xb, yb;
          std::memcpy(&xb, &x.doubles()[r], 8);
          std::memcpy(&yb, &y.doubles()[r], 8);
          ASSERT_EQ(xb, yb) << "col " << c << " row " << r;
          break;
        }
        case ColumnType::kString:
          ASSERT_EQ(x.GetString(r), y.GetString(r))
              << "col " << c << " row " << r;
          break;
      }
    }
  }
}

class FuzzRoundTripTest : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzRoundTripTest, CompressDecompress) {
  Relation relation = RandomRelation(GetParam());
  CompressionConfig config;
  // Vary the cascade depth with the seed as well.
  config.max_cascade_depth = static_cast<u8>(1 + GetParam() % 4);
  CompressedRelation compressed = CompressRelation(relation, config);
  Relation back = MaterializeRelation(compressed, config);
  ExpectEqual(relation, back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTripTest,
                         ::testing::Range<u64>(1000, 1024));

TEST(FuzzRoundTripTest, ThroughDiskFormat) {
  Relation relation = RandomRelation(5555);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteCompressedRelation(compressed, dir).ok());
  CompressedRelation loaded;
  ASSERT_TRUE(ReadCompressedRelation(dir, relation.name(), &loaded).ok());
  Relation back = MaterializeRelation(loaded, config);
  ExpectEqual(relation, back);
}

TEST(ProjectionReadTest, SingleColumnFetch) {
  Relation relation = RandomRelation(7777);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteCompressedRelation(compressed, dir).ok());

  TableMeta meta;
  ASSERT_TRUE(ReadTableMeta(dir, relation.name(), &meta).ok());
  ASSERT_EQ(meta.columns.size(), relation.columns().size());
  ASSERT_EQ(meta.row_count, relation.row_count());

  for (size_t c = 0; c < meta.columns.size(); c++) {
    CompressedColumn column;
    ASSERT_TRUE(
        ReadCompressedColumn(dir, relation.name(), meta, c, &column).ok());
    EXPECT_EQ(column.name, relation.columns()[c].name());
    EXPECT_EQ(column.type, relation.columns()[c].type());
    DecodedBlock scratch;
    u64 bytes = DecompressColumn(column, config, &scratch);
    EXPECT_EQ(bytes, relation.columns()[c].UncompressedBytes());
  }
  // Out-of-range projection is rejected.
  CompressedColumn column;
  EXPECT_FALSE(ReadCompressedColumn(dir, relation.name(), meta,
                                    meta.columns.size(), &column)
                   .ok());
}

}  // namespace
}  // namespace btr
