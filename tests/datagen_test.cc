// Tests for the synthetic data generators and CSV I/O.
#include <gtest/gtest.h>

#include <set>

#include "datagen/archetypes.h"
#include "datagen/csv.h"
#include "datagen/public_bi.h"
#include "datagen/tpch.h"

namespace btr::datagen {
namespace {

TEST(ArchetypeTest, IntArchetypeShapes) {
  auto zero = MakeInts(IntArchetype::kAllZero, 1000, 1);
  for (i32 v : zero) EXPECT_EQ(v, 0);

  auto seq = MakeInts(IntArchetype::kSequential, 1000, 1);
  for (u32 i = 0; i < 1000; i++) EXPECT_EQ(seq[i], static_cast<i32>(i + 1));

  // FK runs: average run length must exceed 2 (denormalized joins).
  auto fk = MakeInts(IntArchetype::kForeignKeyRuns, 64000, 1);
  u32 runs = 1;
  for (size_t i = 1; i < fk.size(); i++) {
    if (fk[i] != fk[i - 1]) runs++;
  }
  EXPECT_GT(64000.0 / runs, 2.0);

  // Skewed category: value 1 dominates.
  auto skew = MakeInts(IntArchetype::kSkewedCategory, 64000, 1);
  u32 ones = 0;
  for (i32 v : skew) ones += v == 1;
  EXPECT_GT(ones, 64000u / 2);
}

TEST(ArchetypeTest, DoubleArchetypeShapes) {
  auto prices = MakeDoubles(DoubleArchetype::kPrice2Decimals, 10000, 2);
  for (double v : prices) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1000.0);
    // Two decimals: 100*v is integral up to double rounding.
    EXPECT_NEAR(std::round(v * 100.0), v * 100.0, 1e-6);
  }
  auto zeros = MakeDoubles(DoubleArchetype::kZeroDominant, 10000, 2);
  u32 zero_count = 0;
  for (double v : zeros) zero_count += v == 0.0;
  EXPECT_GT(zero_count, 8000u);
}

TEST(ArchetypeTest, Determinism) {
  EXPECT_EQ(MakeInts(IntArchetype::kSupplyAmounts, 5000, 7),
            MakeInts(IntArchetype::kSupplyAmounts, 5000, 7));
  EXPECT_NE(MakeInts(IntArchetype::kSupplyAmounts, 5000, 7),
            MakeInts(IntArchetype::kSupplyAmounts, 5000, 8));
}

TEST(PublicBiTest, CorpusShape) {
  PublicBiOptions options;
  options.tables = 2;
  options.rows_per_table = 10000;
  auto corpus = MakePublicBiCorpus(options);
  ASSERT_EQ(corpus.size(), 2u);
  for (const Relation& table : corpus) {
    EXPECT_EQ(table.row_count(), 10000u);
    EXPECT_EQ(table.columns().size(), 14u);
    u32 strings = 0, doubles = 0, ints = 0;
    for (const Column& c : table.columns()) {
      switch (c.type()) {
        case ColumnType::kInteger: ints++; break;
        case ColumnType::kDouble: doubles++; break;
        case ColumnType::kString: strings++; break;
      }
    }
    EXPECT_EQ(strings, 8u);
    EXPECT_EQ(doubles, 3u);
    EXPECT_EQ(ints, 3u);
    // Strings must dominate by volume (paper: 71.5%).
    u64 string_bytes = 0, total = table.UncompressedBytes();
    for (const Column& c : table.columns()) {
      if (c.type() == ColumnType::kString) string_bytes += c.UncompressedBytes();
    }
    EXPECT_GT(string_bytes * 2, total);
  }
}

TEST(TpchTest, LineitemShape) {
  TpchOptions options;
  options.lineitem_rows = 20000;
  Relation lineitem = MakeLineitem(options);
  EXPECT_EQ(lineitem.row_count(), 20000u);
  EXPECT_EQ(lineitem.columns().size(), 14u);
  // l_orderkey is non-decreasing with short runs.
  const Column& orderkey = lineitem.columns()[0];
  for (u32 i = 1; i < orderkey.size(); i++) {
    EXPECT_GE(orderkey.ints()[i], orderkey.ints()[i - 1]);
  }
  // l_linenumber within 1..7.
  const Column& linenumber = lineitem.columns()[3];
  for (u32 i = 0; i < linenumber.size(); i++) {
    EXPECT_GE(linenumber.ints()[i], 1);
    EXPECT_LE(linenumber.ints()[i], 7);
  }
  // l_extendedprice has high cardinality (uniform prices, paper 6.1).
  const Column& price = lineitem.columns()[5];
  std::set<double> distinct(price.doubles().begin(), price.doubles().end());
  EXPECT_GT(distinct.size(), 15000u);
}

TEST(CsvTest, RoundTrip) {
  TpchOptions options;
  options.lineitem_rows = 2000;
  Relation orders = MakeOrders(options);
  std::string text = WriteCsv(orders);
  Relation back("orders");
  Status status = ReadCsv(text, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(back.row_count(), orders.row_count());
  ASSERT_EQ(back.columns().size(), orders.columns().size());
  for (size_t c = 0; c < orders.columns().size(); c++) {
    const Column& a = orders.columns()[c];
    const Column& b = back.columns()[c];
    ASSERT_EQ(a.type(), b.type());
    ASSERT_EQ(a.name(), b.name());
    for (u32 r = 0; r < orders.row_count(); r++) {
      switch (a.type()) {
        case ColumnType::kInteger: ASSERT_EQ(a.ints()[r], b.ints()[r]); break;
        case ColumnType::kDouble: {
          u64 x, y;
          std::memcpy(&x, &a.doubles()[r], 8);
          std::memcpy(&y, &b.doubles()[r], 8);
          ASSERT_EQ(x, y) << a.name() << " row " << r;
          break;
        }
        case ColumnType::kString:
          ASSERT_EQ(a.GetString(r), b.GetString(r));
          break;
      }
    }
  }
}

TEST(CsvTest, NullsRoundTrip) {
  Relation relation("t");
  Column& x = relation.AddColumn("x", ColumnType::kInteger);
  Column& y = relation.AddColumn("y", ColumnType::kDouble);
  x.AppendInt(1);
  y.AppendNull();
  x.AppendNull();
  y.AppendDouble(2.5);
  std::string text = WriteCsv(relation);
  Relation back("t");
  ASSERT_TRUE(ReadCsv(text, &back).ok());
  EXPECT_FALSE(back.columns()[0].IsNull(0));
  EXPECT_TRUE(back.columns()[1].IsNull(0));
  EXPECT_TRUE(back.columns()[0].IsNull(1));
  EXPECT_FALSE(back.columns()[1].IsNull(1));
  EXPECT_EQ(back.columns()[0].ints()[0], 1);
  EXPECT_EQ(back.columns()[1].doubles()[1], 2.5);
}

TEST(CsvTest, BadInputReportsError) {
  Relation out("t");
  EXPECT_FALSE(ReadCsv("", &out).ok());
  Relation out2("t");
  EXPECT_FALSE(ReadCsv("col_without_type\n1\n", &out2).ok());
  Relation out3("t");
  EXPECT_FALSE(ReadCsv("a:int\nnot_a_number\n", &out3).ok());
}

}  // namespace
}  // namespace btr::datagen
