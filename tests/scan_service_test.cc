// btr::service::ScanService — the multi-tenant scan layer
// (docs/SCAN_SERVICE.md).
//
// What must hold:
//   - serviced scans are bit-identical to standalone scans, alone and
//     under heavy cross-tenant concurrency;
//   - admission control rejects with *typed* Status::Throttled (transient,
//     so RunWithRetries can wrap a serviced Scan), and the bounded waiting
//     room admits FIFO when capacity frees;
//   - per-tenant quotas bite: concurrent scans, hedge budget, cache bytes;
//   - the shared cache is warm across tenants (tenant B pays zero GETs for
//     a table tenant A already scanned);
//   - deficit-round-robin keeps a light tenant's queue waits bounded while
//     a hog floods the service;
//   - chaos: under seeded fault schedules every serviced scan is either
//     bit-identical or a well-typed error — never wrong, never hung.
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "btr/btrblocks.h"
#include "btr/scanner.h"
#include "exec/retry.h"
#include "s3sim/fault.h"
#include "s3sim/object_store.h"
#include "service/fair_queue.h"
#include "service/scan_service.h"

namespace btr {
namespace {

// --- FairQueue --------------------------------------------------------------

TEST(FairQueueTest, SingleLanePopsInFifoOrder) {
  service::FairQueue queue;
  u32 lane = queue.AddLane();
  std::vector<int> order;
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(queue.Push(lane, 100, [&order, i] { order.push_back(i); }));
  }
  EXPECT_EQ(queue.Depth(), 4u);
  for (int i = 0; i < 4; i++) {
    std::function<void()> run;
    u64 queued_ns = 0;
    u32 lane_out = 0;
    ASSERT_TRUE(queue.Pop(&run, &queued_ns, &lane_out));
    EXPECT_EQ(lane_out, lane);
    run();
    queue.OnComplete(lane_out);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  service::FairQueue::LaneStats stats = queue.GetLaneStats(lane);
  EXPECT_EQ(stats.pushed, 4u);
  EXPECT_EQ(stats.popped, 4u);
  queue.Close();
  std::function<void()> run;
  u64 queued_ns = 0;
  u32 lane_out = 0;
  EXPECT_FALSE(queue.Pop(&run, &queued_ns, &lane_out));
}

// Two lanes pushing quantum-sized items: DRR must interleave them so no
// prefix of the pop sequence is more than one item apart between lanes.
TEST(FairQueueTest, DeficitRoundRobinInterleavesEqualCostLanes) {
  service::FairQueueConfig config;
  config.quantum_bytes = 1 << 20;
  service::FairQueue queue(config);
  u32 lane_a = queue.AddLane();
  u32 lane_b = queue.AddLane();
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(queue.Push(lane_a, config.quantum_bytes, [] {}));
    ASSERT_TRUE(queue.Push(lane_b, config.quantum_bytes, [] {}));
  }
  int served_a = 0;
  int served_b = 0;
  for (int i = 0; i < 8; i++) {
    std::function<void()> run;
    u64 queued_ns = 0;
    u32 lane_out = 0;
    ASSERT_TRUE(queue.Pop(&run, &queued_ns, &lane_out));
    queue.OnComplete(lane_out);
    (lane_out == lane_a ? served_a : served_b)++;
    EXPECT_LE(std::abs(served_a - served_b), 1)
        << "pop " << i << " skewed: " << served_a << " vs " << served_b;
  }
}

// A lane over its outstanding cap is not servable until OnComplete.
TEST(FairQueueTest, OutstandingCapGatesALane) {
  service::FairQueue queue;
  u32 capped = queue.AddLane(/*max_outstanding=*/1);
  u32 open = queue.AddLane();
  ASSERT_TRUE(queue.Push(capped, 1, [] {}));
  ASSERT_TRUE(queue.Push(capped, 1, [] {}));
  ASSERT_TRUE(queue.Push(open, 1, [] {}));

  std::function<void()> run;
  u64 queued_ns = 0;
  u32 lane_out = 0;
  ASSERT_TRUE(queue.Pop(&run, &queued_ns, &lane_out));
  EXPECT_EQ(lane_out, capped);  // first push, lane under its cap
  // The capped lane now has 1 outstanding: only `open` may be served.
  ASSERT_TRUE(queue.Pop(&run, &queued_ns, &lane_out));
  EXPECT_EQ(lane_out, open);
  queue.OnComplete(open);
  // Completing the capped item re-opens the lane.
  queue.OnComplete(capped);
  ASSERT_TRUE(queue.Pop(&run, &queued_ns, &lane_out));
  EXPECT_EQ(lane_out, capped);
  queue.OnComplete(capped);
}

// --- scan fixtures ----------------------------------------------------------

constexpr u32 kRows = kBlockCapacity + 500;  // 2 row blocks, 3 columns

Relation MakeTable() {
  Relation table("svc_table");
  Column& ints = table.AddColumn("id", ColumnType::kInteger);
  Column& doubles = table.AddColumn("price", ColumnType::kDouble);
  Column& strings = table.AddColumn("city", ColumnType::kString);
  const char* cities[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < kRows; i++) {
    if (i % 97 == 13) {
      ints.AppendNull();
    } else {
      ints.AppendInt(static_cast<i32>(i % 1000));
    }
    doubles.AppendDouble(static_cast<double>(i % 512) * 0.5);
    strings.AppendString(cities[i % 4]);
  }
  return table;
}

ScanSpec FastSpec() {
  ScanSpec spec;
  spec.config.scan_threads = 2;
  spec.config.fetch_threads = 2;
  spec.config.prefetch_depth = 4;
  spec.config.max_attempts = 8;
  spec.config.initial_backoff_ns = 1000;  // 1 us
  spec.config.max_backoff_ns = 8000;      // 8 us
  spec.config.retry_budget = 1024;
  return spec;
}

service::ScanServiceConfig SmallServiceConfig() {
  service::ScanServiceConfig config;
  config.fetch_threads = 4;
  config.decode_threads = 4;
  return config;
}

void ExpectBlocksBitIdentical(const DecodedBlock& expected,
                              const DecodedBlock& actual, u64 tag) {
  ASSERT_EQ(expected.type, actual.type) << "tag " << tag;
  ASSERT_EQ(expected.count, actual.count) << "tag " << tag;
  EXPECT_EQ(expected.null_flags, actual.null_flags) << "tag " << tag;
  switch (expected.type) {
    case ColumnType::kInteger:
      EXPECT_EQ(expected.ints, actual.ints) << "tag " << tag;
      break;
    case ColumnType::kDouble:
      ASSERT_EQ(expected.doubles.size(), actual.doubles.size());
      EXPECT_EQ(0, std::memcmp(expected.doubles.data(), actual.doubles.data(),
                               expected.doubles.size() * sizeof(double)))
          << "tag " << tag;
      break;
    case ColumnType::kString:
      ASSERT_EQ(expected.strings.slots.size(), actual.strings.slots.size());
      for (u32 i = 0; i < expected.count; i++) {
        ASSERT_EQ(expected.strings.Get(i), actual.strings.Get(i))
            << "tag " << tag << " row " << i;
      }
      break;
  }
}

void ExpectOutputsBitIdentical(const ScanOutput& expected,
                               const ScanOutput& actual, u64 tag) {
  ASSERT_EQ(expected.columns.size(), actual.columns.size()) << "tag " << tag;
  for (size_t c = 0; c < expected.columns.size(); c++) {
    ASSERT_EQ(expected.columns[c].blocks.size(),
              actual.columns[c].blocks.size());
    for (size_t b = 0; b < expected.columns[c].blocks.size(); b++) {
      ExpectBlocksBitIdentical(expected.columns[c].blocks[b],
                               actual.columns[c].blocks[b], tag);
    }
  }
}

struct Fixture {
  CompressionConfig config;
  Relation table = MakeTable();
  CompressedRelation compressed;
  TableZoneMap zones;
  s3sim::ObjectStore store;
  ScanOutput reference;  // standalone fault-free scan, full projection

  Fixture() {
    compressed = CompressRelation(table, config);
    for (const Column& column : table.columns()) {
      zones.columns.push_back(ComputeColumnZoneMap(column));
    }
    Status status =
        UploadCompressedRelation(compressed, &zones, "lake/", &store);
    EXPECT_TRUE(status.ok()) << status.ToString();
    Scanner scanner(&store, "svc_table", "lake/");
    EXPECT_TRUE(scanner.Open().ok());
    status = scanner.Scan(FastSpec(), &reference);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
};

// --- serviced scans ---------------------------------------------------------

TEST(ScanServiceTest, ServicedScanIsBitIdenticalToStandalone) {
  Fixture f;
  service::ScanService service(SmallServiceConfig());
  Scanner scanner(service, "tenant-a", &f.store, "svc_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());
  ScanOutput output;
  Status status = scanner.Scan(FastSpec(), &output);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectOutputsBitIdentical(f.reference, output, 0);
  EXPECT_GT(output.stats.requests, 0u);
  EXPECT_GT(output.stats.bytes_fetched, 0u);

  service::TenantStats stats = service.GetTenantStats("tenant-a");
  EXPECT_EQ(stats.scans_admitted, 1u);
  EXPECT_EQ(stats.scans_completed, 1u);
  EXPECT_EQ(stats.gets, output.stats.requests);
  EXPECT_EQ(stats.bytes_fetched, output.stats.bytes_fetched);
  EXPECT_GT(stats.queue_items, 0u);  // work flowed through both lanes
}

TEST(ScanServiceTest, ConcurrentTenantsAllBitIdentical) {
  Fixture f;
  service::ScanService service(SmallServiceConfig());
  constexpr int kTenants = 4;
  constexpr int kScansPerTenant = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTenants; t++) {
    threads.emplace_back([&, t] {
      Scanner scanner(service, "tenant-" + std::to_string(t), &f.store,
                      "svc_table", "lake/");
      if (!scanner.Open().ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int s = 0; s < kScansPerTenant; s++) {
        ScanOutput output;
        Status status = scanner.Scan(FastSpec(), &output);
        if (!status.ok()) {
          failures.fetch_add(1);
          return;
        }
        ExpectOutputsBitIdentical(f.reference, output,
                                  static_cast<u64>(t) * 100 + s);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.running_scans(), 0u);
  for (int t = 0; t < kTenants; t++) {
    service::TenantStats stats =
        service.GetTenantStats("tenant-" + std::to_string(t));
    EXPECT_EQ(stats.scans_completed, static_cast<u64>(kScansPerTenant));
  }
}

// Tenant B scanning a table tenant A already scanned pays zero GETs: every
// block fetch is a shared-cache hit.
TEST(ScanServiceTest, SharedCacheIsWarmAcrossTenants) {
  Fixture f;
  service::ScanService service(SmallServiceConfig());
  {
    Scanner scanner(service, "cold-tenant", &f.store, "svc_table", "lake/");
    ASSERT_TRUE(scanner.Open().ok());
    ScanOutput output;
    ASSERT_TRUE(scanner.Scan(FastSpec(), &output).ok());
    EXPECT_GT(output.stats.requests, 0u);
  }
  {
    Scanner scanner(service, "warm-tenant", &f.store, "svc_table", "lake/");
    ASSERT_TRUE(scanner.Open().ok());
    ScanOutput output;
    ASSERT_TRUE(scanner.Scan(FastSpec(), &output).ok());
    ExpectOutputsBitIdentical(f.reference, output, 1);
    EXPECT_EQ(output.stats.requests, 0u);  // all parts from the shared cache
    EXPECT_GT(output.stats.cache_hits, 0u);
    service::TenantStats stats = service.GetTenantStats("warm-tenant");
    EXPECT_EQ(stats.gets, 0u);
    EXPECT_GT(stats.cache_hits, 0u);
  }
}

// --- admission control ------------------------------------------------------

TEST(ScanServiceTest, TenantConcurrencyQuotaRejectsTyped) {
  service::ScanService service(SmallServiceConfig());
  service::TenantQuota quota;
  quota.max_concurrent_scans = 1;
  u32 slot = service.RegisterTenant("capped", quota);

  service::ScanService::Ticket first;
  ASSERT_TRUE(service.Admit(slot, &first).ok());
  service::ScanService::Ticket second;
  Status status = service.Admit(slot, &second);
  EXPECT_TRUE(status.IsThrottled()) << status.ToString();
  EXPECT_TRUE(status.IsTransient());  // retryable via exec::RunWithRetries
  EXPECT_FALSE(second.admitted);
  service.Release(&first);

  service::TenantStats stats = service.GetTenantStats("capped");
  EXPECT_EQ(stats.scans_rejected, 1u);
  EXPECT_EQ(stats.scans_admitted, 1u);
  EXPECT_EQ(stats.scans_completed, 1u);
}

TEST(ScanServiceTest, SaturatedServiceRejectsWhenRoomIsFull) {
  service::ScanServiceConfig config = SmallServiceConfig();
  config.max_concurrent_scans = 1;
  config.max_queued_scans = 0;  // no waiting room at all
  service::ScanService service(config);
  u32 slot = service.EnsureTenant("t");

  service::ScanService::Ticket first;
  ASSERT_TRUE(service.Admit(slot, &first).ok());
  service::ScanService::Ticket second;
  Status status = service.Admit(slot, &second);
  EXPECT_TRUE(status.IsThrottled()) << status.ToString();
  service.Release(&first);
}

TEST(ScanServiceTest, WaitingRoomAdmitsWhenCapacityFrees) {
  service::ScanServiceConfig config = SmallServiceConfig();
  config.max_concurrent_scans = 1;
  config.max_queued_scans = 4;
  config.admission_timeout_ns = 5ull * 1000 * 1000 * 1000;  // 5 s
  service::ScanService service(config);
  u32 slot = service.EnsureTenant("t");

  service::ScanService::Ticket first;
  ASSERT_TRUE(service.Admit(slot, &first).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.Release(&first);
  });
  service::ScanService::Ticket second;
  u64 wait_ns = 0;
  Status status = service.Admit(slot, &second, &wait_ns);
  releaser.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(second.admitted);
  EXPECT_GT(wait_ns, 0u);
  service.Release(&second);

  service::TenantStats stats = service.GetTenantStats("t");
  EXPECT_EQ(stats.scans_queued, 1u);
  EXPECT_GT(stats.admission_wait_ns, 0u);
}

TEST(ScanServiceTest, AdmissionTimeoutRejectsTyped) {
  service::ScanServiceConfig config = SmallServiceConfig();
  config.max_concurrent_scans = 1;
  config.max_queued_scans = 4;
  config.admission_timeout_ns = 2ull * 1000 * 1000;  // 2 ms
  service::ScanService service(config);
  u32 slot = service.EnsureTenant("t");

  service::ScanService::Ticket first;
  ASSERT_TRUE(service.Admit(slot, &first).ok());
  service::ScanService::Ticket second;
  Status status = service.Admit(slot, &second);
  EXPECT_TRUE(status.IsThrottled()) << status.ToString();
  EXPECT_FALSE(second.admitted);
  service.Release(&first);
}

// A throttled serviced Scan() is transient, so the standard retry loop
// rides out the saturation once capacity frees.
TEST(ScanServiceTest, ThrottledScanSucceedsUnderRunWithRetries) {
  Fixture f;
  service::ScanServiceConfig config = SmallServiceConfig();
  config.max_concurrent_scans = 1;
  config.max_queued_scans = 0;
  service::ScanService service(config);
  u32 hold_slot = service.EnsureTenant("holder");

  service::ScanService::Ticket hold;
  ASSERT_TRUE(service.Admit(hold_slot, &hold).ok());

  Scanner scanner(service, "retrier", &f.store, "svc_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());
  ScanOutput output;
  // First attempt must throttle while the slot is held.
  Status direct = scanner.Scan(FastSpec(), &output);
  EXPECT_TRUE(direct.IsThrottled()) << direct.ToString();

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    service.Release(&hold);
  });
  exec::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ns = 1000 * 1000;  // 1 ms
  policy.max_backoff_ns = 4 * 1000 * 1000;
  policy.retry_budget = 64;
  exec::RetryState retry(policy);
  Status status = exec::RunWithRetries(
      &retry, [&] { return scanner.Scan(FastSpec(), &output); });
  releaser.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectOutputsBitIdentical(f.reference, output, 2);
}

// --- per-tenant quotas ------------------------------------------------------

TEST(ScanServiceTest, HedgeBudgetDeniesOnceSpent) {
  service::ScanService service(SmallServiceConfig());
  service::TenantQuota quota;
  quota.hedge_budget = 2;
  u32 slot = service.RegisterTenant("hedger", quota);
  EXPECT_TRUE(service.TryAcquireTenantHedge(slot));
  EXPECT_TRUE(service.TryAcquireTenantHedge(slot));
  EXPECT_FALSE(service.TryAcquireTenantHedge(slot));
  service::TenantStats stats = service.GetTenantStats("hedger");
  EXPECT_EQ(stats.hedges_denied, 1u);
}

TEST(ScanServiceTest, CacheByteQuotaSkipsInsertsButScanStaysCorrect) {
  Fixture f;
  service::ScanService service(SmallServiceConfig());
  service::TenantQuota quota;
  quota.max_cache_bytes = 64;  // far below one block payload
  service.RegisterTenant("tiny-cache", quota);

  Scanner scanner(service, "tiny-cache", &f.store, "svc_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());
  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(FastSpec(), &output).ok());
  ExpectOutputsBitIdentical(f.reference, output, 3);

  service::TenantStats stats = service.GetTenantStats("tiny-cache");
  EXPECT_GT(stats.cache_quota_skips, 0u);
  EXPECT_LE(stats.cache_bytes, quota.max_cache_bytes);
  // Nothing was cached, so a second scan still pays its GETs.
  ScanOutput again;
  ASSERT_TRUE(scanner.Scan(FastSpec(), &again).ok());
  EXPECT_GT(again.stats.requests, 0u);
}

// --- fairness ---------------------------------------------------------------

// A hog floods the service from several threads while a light tenant runs
// a handful of scans. DRR lanes must keep the light tenant's fair-queue
// waits bounded: its p95 stays under a generous absolute bound that holds
// even at TSan's ~10x slowdown, and far under the hog's total backlog.
TEST(ScanServiceTest, LightTenantQueueWaitBoundedUnderHog) {
  Fixture f;
  service::ScanServiceConfig config = SmallServiceConfig();
  config.fetch_threads = 2;  // scarce executors so the hog really queues
  config.decode_threads = 2;
  service::ScanService service(config);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> hogs;
  for (int t = 0; t < 3; t++) {
    hogs.emplace_back([&] {
      Scanner scanner(service, "hog", &f.store, "svc_table", "lake/");
      if (!scanner.Open().ok()) {
        failures.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        ScanOutput output;
        if (!scanner.Scan(FastSpec(), &output).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  Scanner light(service, "light", &f.store, "svc_table", "lake/");
  ASSERT_TRUE(light.Open().ok());
  for (int s = 0; s < 5; s++) {
    ScanOutput output;
    Status status = light.Scan(FastSpec(), &output);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ExpectOutputsBitIdentical(f.reference, output, 100 + s);
  }
  stop.store(true);
  for (std::thread& hog : hogs) hog.join();
  EXPECT_EQ(failures.load(), 0);

  service::TenantStats stats = service.GetTenantStats("light");
  EXPECT_GT(stats.queue_items, 0u);
  // Generous absolute bound: a starved lane would wait out the hog's whole
  // backlog (seconds); a fair lane waits at most a few executor slots.
  EXPECT_LT(stats.queue_wait_p95_ns, 2ull * 1000 * 1000 * 1000)
      << "light tenant p95 queue wait "
      << stats.queue_wait_p95_ns / 1000000.0 << " ms";
}

// --- chaos ------------------------------------------------------------------

// Seeded fault schedules against the shared store while four tenants scan
// through one service: every scan either matches the reference
// bit-for-bit or fails with a typed Status. Cross-tenant sharing must not
// weaken the standalone chaos guarantees.
TEST(ScanServiceTest, MultiTenantChaosBitIdenticalOrTypedStatus) {
  Fixture f;
  service::ScanService service(SmallServiceConfig());
  u32 ok_scans = 0;
  u32 failed_scans = 0;
  for (u64 seed = 1; seed <= 12; seed++) {
    f.store.InstallFaultPlan(s3sim::MakeChaosPlan(seed, 0.15, true));
    std::vector<std::thread> threads;
    std::mutex tally_mutex;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&, t, seed] {
        Scanner scanner(service, "chaos-" + std::to_string(t), &f.store,
                        "svc_table", "lake/");
        ScanSpec spec = FastSpec();
        Status status = scanner.Open(spec.config);
        ScanOutput output;
        if (status.ok()) status = scanner.Scan(spec, &output);
        std::lock_guard<std::mutex> lock(tally_mutex);
        if (status.ok()) {
          ExpectOutputsBitIdentical(f.reference, output, seed * 10 + t);
          ok_scans++;
        } else {
          EXPECT_TRUE(status.IsCorruption() || status.IsTransient() ||
                      status.IsNotFound() || status.IsIoError())
              << "seed " << seed << ": untyped failure "
              << status.ToString();
          failed_scans++;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  f.store.InstallFaultPlan(s3sim::FaultPlan());
  EXPECT_GT(ok_scans, 0u);
  EXPECT_EQ(service.running_scans(), 0u);
}

}  // namespace
}  // namespace btr
