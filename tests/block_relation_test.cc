// Integration tests: block compression with NULLs, relation round trips,
// file format persistence, telemetry.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "btr/btrblocks.h"
#include "util/random.h"

namespace btr {
namespace {

Relation MakeMixedRelation(u64 seed, u32 rows) {
  Random rng(seed);
  Relation relation("test_table");
  Column& ids = relation.AddColumn("id", ColumnType::kInteger);
  Column& price = relation.AddColumn("price", ColumnType::kDouble);
  Column& city = relation.AddColumn("city", ColumnType::kString);
  const char* cities[] = {"PHOENIX", "RALEIGH", "BETHESDA", "ATHENS"};
  for (u32 i = 0; i < rows; i++) {
    ids.AppendInt(static_cast<i32>(i));
    if (rng.NextBounded(10) == 0) {
      price.AppendNull();
    } else {
      price.AppendDouble(static_cast<double>(rng.NextBounded(100000)) / 100.0);
    }
    if (rng.NextBounded(20) == 0) {
      city.AppendNull();
    } else {
      city.AppendString(cities[rng.NextBounded(4)]);
    }
  }
  return relation;
}

void ExpectRelationsEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.columns().size(), b.columns().size());
  ASSERT_EQ(a.row_count(), b.row_count());
  for (size_t c = 0; c < a.columns().size(); c++) {
    const Column& ca = a.columns()[c];
    const Column& cb = b.columns()[c];
    ASSERT_EQ(ca.type(), cb.type());
    ASSERT_EQ(ca.name(), cb.name());
    for (u32 r = 0; r < a.row_count(); r++) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r)) << ca.name() << " row " << r;
      switch (ca.type()) {
        case ColumnType::kInteger:
          ASSERT_EQ(ca.ints()[r], cb.ints()[r]) << "row " << r;
          break;
        case ColumnType::kDouble: {
          u64 x, y;
          std::memcpy(&x, &ca.doubles()[r], 8);
          std::memcpy(&y, &cb.doubles()[r], 8);
          ASSERT_EQ(x, y) << "row " << r;
          break;
        }
        case ColumnType::kString:
          ASSERT_EQ(ca.GetString(r), cb.GetString(r)) << "row " << r;
          break;
      }
    }
  }
}

TEST(BlockTest, IntBlockWithNulls) {
  std::vector<i32> values(10000, 7);
  std::vector<u8> nulls(10000, 0);
  for (int i = 0; i < 10000; i += 17) nulls[i] = 1;
  CompressionConfig config;
  ByteBuffer block;
  BlockCompressionInfo info;
  CompressIntBlock(values.data(), nulls.data(), 10000, &block, config, &info);
  EXPECT_EQ(static_cast<IntSchemeCode>(info.root_scheme), IntSchemeCode::kOneValue);

  DecodedBlock decoded;
  DecompressBlock(block.data(), &decoded, config);
  EXPECT_EQ(decoded.count, 10000u);
  EXPECT_EQ(decoded.type, ColumnType::kInteger);
  for (u32 i = 0; i < 10000; i++) {
    EXPECT_EQ(decoded.IsNull(i), nulls[i] != 0);
    EXPECT_EQ(decoded.ints[i], 7);
  }
}

TEST(BlockTest, NoNullsMeansNoNullFlags) {
  std::vector<double> values(100, 1.5);
  CompressionConfig config;
  ByteBuffer block;
  CompressDoubleBlock(values.data(), nullptr, 100, &block, config);
  DecodedBlock decoded;
  DecompressBlock(block.data(), &decoded, config);
  EXPECT_TRUE(decoded.null_flags.empty());
  EXPECT_FALSE(decoded.IsNull(50));
}

TEST(RelationTest, RoundTripMultiBlock) {
  // > kBlockCapacity rows forces multiple blocks per column.
  Relation relation = MakeMixedRelation(1, 150000);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  EXPECT_EQ(compressed.columns.size(), 3u);
  EXPECT_EQ(compressed.columns[0].blocks.size(), 3u);
  EXPECT_GT(compressed.CompressionRatio(), 2.0);

  Relation back = MaterializeRelation(compressed, config);
  ExpectRelationsEqual(relation, back);
}

TEST(RelationTest, DecompressReportsBytes) {
  Relation relation = MakeMixedRelation(2, 64000);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  u64 bytes = DecompressRelation(compressed, config);
  EXPECT_EQ(bytes, relation.UncompressedBytes());
}

TEST(RelationTest, ParallelCompressionMatchesSerial) {
  Relation relation = MakeMixedRelation(3, 100000);
  CompressionConfig config;
  CompressedRelation serial = CompressRelation(relation, config);
  exec::ThreadPool pool(4);
  CompressedRelation parallel = CompressRelation(relation, config, &pool);
  ASSERT_EQ(serial.columns.size(), parallel.columns.size());
  for (size_t c = 0; c < serial.columns.size(); c++) {
    ASSERT_EQ(serial.columns[c].blocks.size(), parallel.columns[c].blocks.size());
    for (size_t b = 0; b < serial.columns[c].blocks.size(); b++) {
      const ByteBuffer& x = serial.columns[c].blocks[b];
      const ByteBuffer& y = parallel.columns[c].blocks[b];
      ASSERT_EQ(x.size(), y.size());
      ASSERT_EQ(std::memcmp(x.data(), y.data(), x.size()), 0);
    }
  }
}

TEST(FileFormatTest, WriteReadRoundTrip) {
  Relation relation = MakeMixedRelation(4, 80000);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);

  std::string dir = ::testing::TempDir();
  Status status = WriteCompressedRelation(compressed, dir);
  ASSERT_TRUE(status.ok()) << status.ToString();

  CompressedRelation loaded;
  status = ReadCompressedRelation(dir, "test_table", &loaded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.row_count, compressed.row_count);
  EXPECT_EQ(loaded.CompressedBytes(), compressed.CompressedBytes());

  Relation back = MaterializeRelation(loaded, config);
  ExpectRelationsEqual(relation, back);
}

TEST(FileFormatTest, MissingFileReportsNotFound) {
  CompressedRelation out;
  Status status = ReadCompressedRelation("/nonexistent_dir_xyz", "nope", &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kNotFound);
}

TEST(TelemetryTest, EstimationShareIsSmall) {
  // Paper Section 3.1: scheme selection uses ~1.2% of compression time.
  // Generous bound here: estimation must stay a small fraction.
  Relation relation = MakeMixedRelation(5, 128000);
  Telemetry telemetry;
  CompressionConfig config;
  config.telemetry = &telemetry;
  CompressRelation(relation, config);
  EXPECT_GT(telemetry.compress_ns, 0u);
  EXPECT_GT(telemetry.estimate_ns, 0u);
  EXPECT_LT(telemetry.estimate_ns, telemetry.compress_ns);
  u64 total_uses = 0;
  for (auto& per_type : telemetry.scheme_uses) {
    for (u64 uses : per_type) total_uses += uses;
  }
  // 3 columns x 2 blocks each.
  EXPECT_EQ(total_uses, 6u);
}

TEST(BlockTest, PeekBlockScheme) {
  std::vector<i32> values(1000, 3);
  CompressionConfig config;
  ByteBuffer block;
  BlockCompressionInfo info;
  CompressIntBlock(values.data(), nullptr, 1000, &block, config, &info);
  EXPECT_EQ(PeekBlockScheme(block.data()), info.root_scheme);
}

}  // namespace
}  // namespace btr
