// Tests for util/status.h: every code's predicates and ToString, the
// transient classification exec/retry.h keys on, and the
// BTR_RETURN_IF_ERROR short-circuit macro.
#include <gtest/gtest.h>

#include "util/status.h"

namespace btr {
namespace {

TEST(StatusTest, DefaultAndOkAreOk) {
  EXPECT_TRUE(Status().ok());
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().code(), Status::Code::kOk);
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_FALSE(Status::Ok().IsTransient());
}

TEST(StatusTest, EveryFactorySetsItsCodeAndMessage) {
  struct Case {
    Status status;
    Status::Code code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), Status::Code::kInvalidArgument,
       "InvalidArgument"},
      {Status::Corruption("m"), Status::Code::kCorruption, "Corruption"},
      {Status::IoError("m"), Status::Code::kIoError, "IoError"},
      {Status::NotFound("m"), Status::Code::kNotFound, "NotFound"},
      {Status::Internal("m"), Status::Code::kInternal, "Internal"},
      {Status::Unavailable("m"), Status::Code::kUnavailable, "Unavailable"},
      {Status::Throttled("m"), Status::Code::kThrottled, "Throttled"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m") << c.name;
  }
}

TEST(StatusTest, PredicatesMatchExactlyOneCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Throttled("x").IsThrottled());
  // Cross-checks: a predicate never matches another code.
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
  EXPECT_FALSE(Status::Unavailable("x").IsThrottled());
  EXPECT_FALSE(Status::Throttled("x").IsUnavailable());
}

TEST(StatusTest, OnlyUnavailableAndThrottledAreTransient) {
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_TRUE(Status::Throttled("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::Corruption("x").IsTransient());
  EXPECT_FALSE(Status::IoError("x").IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
}

Status CountingHelper(const Status& first, int* calls_after) {
  BTR_RETURN_IF_ERROR(first);
  (*calls_after)++;
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorShortCircuits) {
  int calls_after = 0;
  Status s = CountingHelper(Status::Corruption("boom"), &calls_after);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "boom");
  EXPECT_EQ(calls_after, 0) << "code after the macro must not run";

  s = CountingHelper(Status::Ok(), &calls_after);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls_after, 1) << "OK must fall through";
}

TEST(StatusTest, ReturnIfErrorEvaluatesExpressionOnce) {
  int evaluations = 0;
  auto once = [&]() -> Status {
    evaluations++;
    return Status::IoError("io");
  };
  auto wrapper = [&]() -> Status {
    BTR_RETURN_IF_ERROR(once());
    return Status::Ok();
  };
  EXPECT_TRUE(wrapper().IsIoError());
  EXPECT_EQ(evaluations, 1);
}

TEST(StatusTest, CopySemanticsPreserveCodeAndMessage) {
  Status original = Status::Throttled("slow down");
  Status copy = original;
  EXPECT_TRUE(copy.IsThrottled());
  EXPECT_EQ(copy.message(), "slow down");
  EXPECT_TRUE(original.IsThrottled()) << "copy must not steal the source";
}

}  // namespace
}  // namespace btr
