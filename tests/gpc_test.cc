// Tests for the general-purpose codecs (LZ77 fast, Huffman, entropy LZ).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpc/codec.h"
#include "gpc/entropy_lz.h"
#include "gpc/huffman.h"
#include "gpc/lz77.h"
#include "util/random.h"

namespace btr::gpc {
namespace {

std::string MakeCompressible(u64 seed, size_t approx_size) {
  Random rng(seed);
  const char* fragments[] = {"GET /index.html HTTP/1.1", "order-", "NULL",
                             "2023-06-18", "Seattle, WA", "0.99", "id="};
  std::string s;
  while (s.size() < approx_size) {
    s += fragments[rng.NextBounded(7)];
    s.push_back(static_cast<char>('a' + rng.NextBounded(26)));
  }
  return s;
}

std::string MakeRandom(u64 seed, size_t size) {
  Random rng(seed);
  std::string s(size, 0);
  for (char& c : s) c = static_cast<char>(rng.Next() & 0xFF);
  return s;
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<CodecKind, int>> {};

TEST_P(CodecRoundTripTest, RoundTrip) {
  auto [kind, scenario] = GetParam();
  const Codec& codec = GetCodec(kind);
  std::string input;
  switch (scenario) {
    case 0: input = ""; break;
    case 1: input = "x"; break;
    case 2: input = MakeCompressible(7, 100000); break;
    case 3: input = MakeRandom(8, 50000); break;
    case 4: input = std::string(200000, 'A'); break;
    case 5: input = MakeCompressible(9, 13); break;  // below match threshold
  }
  ByteBuffer compressed;
  size_t compressed_len =
      codec.Compress(reinterpret_cast<const u8*>(input.data()), input.size(),
                     &compressed);
  EXPECT_EQ(compressed_len, compressed.size());
  ByteBuffer output(input.size());
  size_t consumed = codec.Decompress(compressed.data(), compressed_len,
                                     output.data(), input.size());
  EXPECT_EQ(consumed, compressed_len);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(output.data()), input.size()),
            input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllScenarios, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(CodecKind::kNone, CodecKind::kLz77,
                                         CodecKind::kEntropyLz),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

TEST(Lz77Test, CompressesRepetitiveData) {
  std::string input = MakeCompressible(1, 500000);
  ByteBuffer out;
  size_t n = GetCodec(CodecKind::kLz77)
                 .Compress(reinterpret_cast<const u8*>(input.data()),
                           input.size(), &out);
  EXPECT_LT(n, input.size() / 2);
}

TEST(EntropyLzTest, DenserThanLz77OnText) {
  // The Zstd-class codec must beat the Snappy-class codec on ratio —
  // that's the trade-off corner it exists for.
  std::string input = MakeCompressible(2, 500000);
  ByteBuffer lz_out, ent_out;
  size_t lz_bytes = GetCodec(CodecKind::kLz77)
                        .Compress(reinterpret_cast<const u8*>(input.data()),
                                  input.size(), &lz_out);
  size_t ent_bytes = GetCodec(CodecKind::kEntropyLz)
                         .Compress(reinterpret_cast<const u8*>(input.data()),
                                   input.size(), &ent_out);
  EXPECT_LT(ent_bytes, lz_bytes);
}

TEST(HuffmanTest, RoundTripSkewed) {
  Random rng(3);
  std::vector<u8> input(100000);
  for (u8& b : input) b = static_cast<u8>(rng.NextZipf(256, 1.3));
  ByteBuffer encoded;
  size_t n = HuffmanEncode(input.data(), input.size(), &encoded);
  EXPECT_EQ(n, encoded.size());
  EXPECT_EQ(HuffmanEncodedSize(input.data(), input.size()), n);
  EXPECT_LT(n, input.size());  // skewed bytes must compress
  std::vector<u8> decoded(input.size());
  size_t consumed = HuffmanDecode(encoded.data(), input.size(), decoded.data());
  EXPECT_EQ(consumed, n);
  EXPECT_EQ(decoded, input);
}

TEST(HuffmanTest, SingleSymbolInput) {
  std::vector<u8> input(1000, 42);
  ByteBuffer encoded;
  HuffmanEncode(input.data(), input.size(), &encoded);
  std::vector<u8> decoded(input.size());
  HuffmanDecode(encoded.data(), input.size(), decoded.data());
  EXPECT_EQ(decoded, input);
}

TEST(HuffmanTest, EmptyInput) {
  ByteBuffer encoded;
  HuffmanEncode(nullptr, 0, &encoded);
  std::vector<u8> decoded(1);
  HuffmanDecode(encoded.data(), 0, decoded.data());
}

TEST(HuffmanTest, UniformBytesStayNearOne) {
  std::vector<u8> input(65536);
  for (size_t i = 0; i < input.size(); i++) input[i] = static_cast<u8>(i);
  ByteBuffer encoded;
  size_t n = HuffmanEncode(input.data(), input.size(), &encoded);
  // 8-bit codes for uniform data: header + ~same size.
  EXPECT_LT(n, input.size() + 600);
  std::vector<u8> decoded(input.size());
  HuffmanDecode(encoded.data(), input.size(), decoded.data());
  EXPECT_EQ(decoded, input);
}

TEST(CodecTest, Names) {
  EXPECT_STREQ(CodecName(CodecKind::kNone), "none");
  EXPECT_STREQ(CodecName(CodecKind::kLz77), "lz77");
  EXPECT_STREQ(CodecName(CodecKind::kEntropyLz), "entropy_lz");
}

}  // namespace
}  // namespace btr::gpc
