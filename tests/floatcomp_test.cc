// Tests for the double-compression baselines (FPC, Gorilla, Chimp,
// Chimp128): bitwise-lossless round trips including specials, and basic
// effectiveness expectations per codec.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "floatcomp/chimp.h"
#include "floatcomp/fpc.h"
#include "floatcomp/gorilla.h"
#include "util/random.h"

namespace btr::floatcomp {
namespace {

using CompressFn = std::function<size_t(const double*, u32, ByteBuffer*)>;
using DecompressFn = std::function<size_t(const u8*, u32, double*)>;

struct NamedCodec {
  const char* name;
  CompressFn compress;
  DecompressFn decompress;
};

std::vector<NamedCodec> AllCodecs() {
  return {
      {"fpc", FpcCompress, FpcDecompress},
      {"gorilla", GorillaCompress, GorillaDecompress},
      {"chimp", ChimpCompress, ChimpDecompress},
      {"chimp128", Chimp128Compress, Chimp128Decompress},
  };
}

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

void CheckRoundTrip(const std::vector<double>& input) {
  for (const NamedCodec& codec : AllCodecs()) {
    ByteBuffer compressed;
    codec.compress(input.data(), static_cast<u32>(input.size()), &compressed);
    std::vector<double> output(input.size());
    codec.decompress(compressed.data(), static_cast<u32>(input.size()),
                     output.data());
    EXPECT_TRUE(BitwiseEqual(input, output)) << codec.name;
  }
}

TEST(FloatCompTest, EmptyAndSingle) {
  CheckRoundTrip({});
  CheckRoundTrip({3.25});
  CheckRoundTrip({0.0});
}

TEST(FloatCompTest, SpecialValues) {
  CheckRoundTrip({0.0, -0.0, std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::quiet_NaN(),
                  std::numeric_limits<double>::denorm_min(),
                  std::numeric_limits<double>::max(),
                  -std::numeric_limits<double>::max(), 1e-300, 0.1});
}

TEST(FloatCompTest, ConstantSeries) {
  CheckRoundTrip(std::vector<double>(10000, 19.99));
}

TEST(FloatCompTest, SlowlyVaryingTimeSeries) {
  std::vector<double> input;
  double v = 100.0;
  Random rng(1);
  for (int i = 0; i < 20000; i++) {
    v += (rng.NextDouble() - 0.5) * 0.01;
    input.push_back(v);
  }
  CheckRoundTrip(input);
}

TEST(FloatCompTest, RandomBitPatterns) {
  Random rng(2);
  std::vector<double> input;
  for (int i = 0; i < 5000; i++) {
    u64 bits = rng.Next();
    double d;
    std::memcpy(&d, &bits, 8);
    input.push_back(d);
  }
  CheckRoundTrip(input);
}

TEST(FloatCompTest, PriceData) {
  Random rng(3);
  std::vector<double> input;
  for (int i = 0; i < 20000; i++) {
    input.push_back(static_cast<double>(rng.NextBounded(10000)) / 100.0);
  }
  CheckRoundTrip(input);
}

TEST(GorillaTest, ConstantSeriesNearOneBitPerValue) {
  std::vector<double> input(10000, 42.5);
  ByteBuffer compressed;
  size_t bytes = GorillaCompress(input.data(), 10000, &compressed);
  EXPECT_LT(bytes, 10000 / 4);  // ~1 bit per repeated value
}

TEST(Chimp128Test, RecurringValuesBeatChimp) {
  // A small set of recurring (but not adjacent-repeating) values is the
  // case Chimp128's 128-value reference window exists for.
  Random rng(4);
  std::vector<double> values = {1.5, 2.25, 3.75, 19.99, 123.456, 0.125};
  std::vector<double> input;
  for (int i = 0; i < 20000; i++) input.push_back(values[rng.NextBounded(6)]);
  ByteBuffer chimp_out, chimp128_out;
  size_t chimp_bytes = ChimpCompress(input.data(), 20000, &chimp_out);
  size_t chimp128_bytes = Chimp128Compress(input.data(), 20000, &chimp128_out);
  EXPECT_LT(chimp128_bytes, chimp_bytes);
}

TEST(FpcTest, PredictableSeriesCompresses) {
  // A strided series is FCM/DFCM's favorable case.
  std::vector<double> input;
  for (int i = 0; i < 20000; i++) input.push_back(static_cast<double>(i));
  ByteBuffer compressed;
  size_t bytes = FpcCompress(input.data(), 20000, &compressed);
  EXPECT_LT(bytes, 20000 * 8 / 2);
  std::vector<double> output(20000);
  FpcDecompress(compressed.data(), 20000, output.data());
  EXPECT_TRUE(BitwiseEqual(input, output));
}

TEST(FpcTest, OddCountHalfHeader) {
  // Odd counts exercise the half-filled trailing header byte.
  std::vector<double> input = {1.0, 2.0, 3.0};
  ByteBuffer compressed;
  FpcCompress(input.data(), 3, &compressed);
  std::vector<double> output(3);
  FpcDecompress(compressed.data(), 3, output.data());
  EXPECT_TRUE(BitwiseEqual(input, output));
}

class FloatCompPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(FloatCompPropertyTest, MixedRegimeRoundTrip) {
  Random rng(GetParam());
  std::vector<double> input;
  for (int i = 0; i < 3000; i++) {
    switch (rng.NextBounded(5)) {
      case 0: input.push_back(static_cast<double>(rng.NextBounded(100)) / 4); break;
      case 1: input.push_back(rng.NextDouble() * 1e9); break;
      case 2: input.push_back(input.empty() ? 0.0 : input.back()); break;
      case 3: input.push_back(-rng.NextDouble()); break;
      case 4: {
        u64 bits = rng.Next();
        double d;
        std::memcpy(&d, &bits, 8);
        input.push_back(d);
        break;
      }
    }
  }
  CheckRoundTrip(input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloatCompPropertyTest,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace btr::floatcomp
