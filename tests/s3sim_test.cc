// Tests for the simulated object store, its fault injection, and the scan
// cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "s3sim/fault.h"
#include "s3sim/object_store.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace btr::s3sim {
namespace {

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store;
  Random rng(1);
  std::vector<u8> data(40 << 20);  // 40 MiB: three 16 MiB chunks
  for (u8& b : data) b = static_cast<u8>(rng.Next());
  ASSERT_TRUE(store.Put("bucket/key", data.data(), data.size()).ok());
  EXPECT_TRUE(store.Contains("bucket/key"));
  u64 size = 0;
  ASSERT_TRUE(store.ObjectSize("bucket/key", &size).ok());
  EXPECT_EQ(size, data.size());

  std::vector<u8> fetched;
  ASSERT_TRUE(store.GetObject("bucket/key", &fetched).ok());
  EXPECT_EQ(fetched, data);
  EXPECT_EQ(store.total_requests(), 3u);  // ceil(40 MiB / 16 MiB)
  EXPECT_EQ(store.total_bytes_fetched(), data.size());
  EXPECT_GT(store.network_seconds(), 0.0);
}

TEST(ObjectStoreTest, RangedGet) {
  ObjectStore store;
  std::vector<u8> data(1000);
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<u8>(i);
  ASSERT_TRUE(store.Put("k", data.data(), data.size()).ok());
  std::vector<u8> chunk;
  ASSERT_TRUE(store.GetChunk("k", 100, 50, &chunk).ok());
  ASSERT_EQ(chunk.size(), 50u);
  for (size_t i = 0; i < 50; i++) EXPECT_EQ(chunk[i], static_cast<u8>(100 + i));
  // Past-end range is clipped.
  ASSERT_TRUE(store.GetChunk("k", 990, 50, &chunk).ok());
  EXPECT_EQ(chunk.size(), 10u);
}

TEST(ObjectStoreTest, MissingObjectIsNotFoundNotAbort) {
  ObjectStore store;
  u64 size = 0;
  EXPECT_TRUE(store.ObjectSize("nope", &size).IsNotFound());
  std::vector<u8> out;
  EXPECT_TRUE(store.GetChunk("nope", 0, 10, &out).IsNotFound());
  EXPECT_TRUE(store.GetObject("nope", &out).IsNotFound());
}

TEST(ObjectStoreTest, OffsetPastEndIsInvalidArgument) {
  ObjectStore store;
  std::vector<u8> data(100, 7);
  ASSERT_TRUE(store.Put("k", data.data(), data.size()).ok());
  std::vector<u8> out;
  EXPECT_TRUE(store.GetChunk("k", 200, 10, &out).IsInvalidArgument());
}

TEST(ObjectStoreTest, ResetAccounting) {
  ObjectStore store;
  std::vector<u8> data(100, 1);
  ASSERT_TRUE(store.Put("k", data.data(), data.size()).ok());
  std::vector<u8> out;
  ASSERT_TRUE(store.GetObject("k", &out).ok());
  EXPECT_GT(store.total_requests(), 0u);
  store.ResetAccounting();
  EXPECT_EQ(store.total_requests(), 0u);
  EXPECT_EQ(store.total_bytes_fetched(), 0u);
  EXPECT_EQ(store.network_seconds(), 0.0);
}

// Put racing readers of the same key must never tear: a reader sees either
// the old blob or the new one, in full. Run with TSan in CI.
TEST(ObjectStoreTest, ConcurrentPutAndGetAreSafe) {
  ObjectStore store;
  constexpr size_t kSize = 64 << 10;
  std::vector<u8> zeros(kSize, 0x00), ones(kSize, 0xFF);
  ASSERT_TRUE(store.Put("k", zeros.data(), zeros.size()).ok());

  std::atomic<bool> stop{false};
  std::atomic<u64> torn_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      std::vector<u8> out;
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(store.GetChunk("k", 0, kSize, &out).ok());
        ASSERT_EQ(out.size(), kSize);
        // Every byte must match the first: a mix means a torn blob.
        for (u8 b : out) {
          if (b != out[0]) {
            torn_reads.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        store.Put("k", (i & 1) != 0 ? ones.data() : zeros.data(), kSize).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn_reads.load(), 0u);
  // Accounting stayed coherent under concurrency.
  EXPECT_EQ(store.total_bytes_fetched(), store.total_requests() * kSize);
}

TEST(FaultInjectionTest, TargetedOrdinalRuleFiresExactlyOnce) {
  ObjectStore store;
  std::vector<u8> data(1000, 3);
  ASSERT_TRUE(store.Put("table.2.btr", data.data(), data.size()).ok());
  ASSERT_TRUE(store.Put("table.0.btr", data.data(), data.size()).ok());

  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(FaultRule::Throttle(".2.btr", 3));  // 3rd GET of col 2
  store.InstallFaultPlan(plan);

  std::vector<u8> out;
  for (int i = 1; i <= 5; i++) {
    Status other = store.GetChunk("table.0.btr", 0, 10, &out);
    EXPECT_TRUE(other.ok()) << "non-matching key must never fault";
    Status s = store.GetChunk("table.2.btr", 0, 10, &out);
    if (i == 3) {
      EXPECT_TRUE(s.IsThrottled()) << "ordinal 3 must throttle";
    } else {
      EXPECT_TRUE(s.ok()) << "GET " << i << " should pass";
    }
  }
  EXPECT_EQ(store.faults_injected(), 1u);  // max_fires=1 disarms the rule
}

TEST(FaultInjectionTest, TruncateAndCorruptAreDetectableDataFaults) {
  ObjectStore store;
  std::vector<u8> data(100);
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<u8>(i);
  ASSERT_TRUE(store.Put("k", data.data(), data.size()).ok());

  FaultPlan plan;
  plan.seed = 11;
  plan.rules.push_back(FaultRule::Truncate("k", 1, 5));
  plan.rules.push_back(FaultRule::Corrupt("k", 2, 10));
  store.InstallFaultPlan(plan);

  std::vector<u8> out;
  // 1st GET: truncated to 5 bytes but "successful" — like a short read.
  ASSERT_TRUE(store.GetChunk("k", 0, 50, &out).ok());
  EXPECT_EQ(out.size(), 5u);
  // 2nd GET: full length, one flipped byte at offset 10.
  ASSERT_TRUE(store.GetChunk("k", 0, 50, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  EXPECT_NE(out[10], data[10]);
  out[10] = data[10];
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
  // 3rd GET: plan exhausted, clean bytes again.
  ASSERT_TRUE(store.GetChunk("k", 0, 50, &out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
  EXPECT_EQ(store.faults_injected(), 2u);
}

TEST(FaultInjectionTest, ChaosPlanIsDeterministicPerSeed) {
  auto run = [](u64 seed) {
    ObjectStore store;
    std::vector<u8> data(100, 9);
    EXPECT_TRUE(store.Put("k", data.data(), data.size()).ok());
    store.InstallFaultPlan(MakeChaosPlan(seed, 0.5, true));
    std::string outcomes;
    std::vector<u8> out;
    for (int i = 0; i < 64; i++) {
      Status s = store.GetChunk("k", 0, 100, &out);
      outcomes += s.ok() ? (out.size() == 100 ? 'o' : 't') : 'f';
    }
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42)) << "same seed must replay identically";
  EXPECT_NE(run(42), run(43)) << "different seeds should differ";
  // At 50% fault rate, 64 GETs should see both outcomes.
  std::string outcomes = run(42);
  EXPECT_NE(outcomes.find('f'), std::string::npos);
  EXPECT_NE(outcomes.find('o'), std::string::npos);
}

TEST(FaultInjectionTest, ClearFaultPlanStopsInjection) {
  ObjectStore store;
  std::vector<u8> data(10, 1);
  ASSERT_TRUE(store.Put("k", data.data(), data.size()).ok());
  store.InstallFaultPlan(MakeTransientPlan(3, 1.0));
  std::vector<u8> out;
  // rate 1.0 splits across independent probability gates (~72% per GET);
  // a handful of GETs must trip at least one. Latency faults still
  // succeed, so only the counter is asserted.
  for (int i = 0; i < 16; i++) {
    (void)store.GetChunk("k", 0, 10, &out);
  }
  EXPECT_GE(store.faults_injected(), 1u);
  store.ClearFaultPlan();
  u64 before = store.faults_injected();
  for (int i = 0; i < 16; i++) {
    EXPECT_TRUE(store.GetChunk("k", 0, 10, &out).ok());
  }
  EXPECT_EQ(store.faults_injected(), before);
}

TEST(FaultInjectionTest, TransientPlanNeverCorruptsData) {
  ObjectStore store;
  std::vector<u8> data(256);
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<u8>(i * 7);
  ASSERT_TRUE(store.Put("k", data.data(), data.size()).ok());
  store.InstallFaultPlan(MakeTransientPlan(99, 0.4));
  std::vector<u8> out;
  for (int i = 0; i < 200; i++) {
    Status s = store.GetChunk("k", 0, 256, &out);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsTransient()) << s.ToString();
      continue;
    }
    ASSERT_EQ(out.size(), 256u) << "transient plan must not truncate";
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()))
        << "transient plan must not corrupt";
  }
}

TEST(MultipartUploadTest, AssemblesPartsInPartNumberOrder) {
  ObjectStore store;
  std::string id;
  ASSERT_TRUE(store.CreateMultipartUpload("mp/object", &id).ok());
  // Upload out of order; the assembled object must follow part numbers.
  const std::string p3 = "-tail", p1 = "head-", p2 = "middle";
  ASSERT_TRUE(store.UploadPart(id, 3, reinterpret_cast<const u8*>(p3.data()),
                               p3.size())
                  .ok());
  ASSERT_TRUE(store.UploadPart(id, 1, reinterpret_cast<const u8*>(p1.data()),
                               p1.size())
                  .ok());
  ASSERT_TRUE(store.UploadPart(id, 2, reinterpret_cast<const u8*>(p2.data()),
                               p2.size())
                  .ok());
  // Nothing visible until completion.
  EXPECT_FALSE(store.Contains("mp/object"));
  std::vector<PartInfo> parts;
  std::string key;
  ASSERT_TRUE(store.ListParts(id, &key, &parts).ok());
  EXPECT_EQ(key, "mp/object");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].part_number, 1u);
  EXPECT_EQ(parts[0].size, p1.size());
  EXPECT_EQ(parts[0].crc32c, Crc32c(p1.data(), p1.size()));
  ASSERT_TRUE(store.CompleteMultipartUpload(id).ok());
  std::vector<u8> blob;
  ASSERT_TRUE(store.GetObject("mp/object", &blob).ok());
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "head-middle-tail");
  // The upload is gone once completed.
  EXPECT_TRUE(store.ListMultipartUploads("").empty());
  EXPECT_FALSE(store.ListParts(id, &key, &parts).ok());
}

TEST(MultipartUploadTest, ReuploadedPartReplacesDamagedBytes) {
  ObjectStore store;
  std::string id;
  ASSERT_TRUE(store.CreateMultipartUpload("mp/object", &id).ok());
  const std::string bad = "XXXX", good = "good";
  ASSERT_TRUE(store.UploadPart(id, 1, reinterpret_cast<const u8*>(bad.data()),
                               bad.size())
                  .ok());
  ASSERT_TRUE(store.UploadPart(id, 1, reinterpret_cast<const u8*>(good.data()),
                               good.size())
                  .ok());
  ASSERT_TRUE(store.CompleteMultipartUpload(id).ok());
  std::vector<u8> blob;
  ASSERT_TRUE(store.GetObject("mp/object", &blob).ok());
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "good");
}

TEST(MultipartUploadTest, AbortIsIdempotentAndDropsParts) {
  ObjectStore store;
  std::string id;
  ASSERT_TRUE(store.CreateMultipartUpload("mp/object", &id).ok());
  const std::string p = "bytes";
  ASSERT_TRUE(
      store.UploadPart(id, 1, reinterpret_cast<const u8*>(p.data()), p.size())
          .ok());
  ASSERT_EQ(store.ListMultipartUploads("mp/").size(), 1u);
  ASSERT_TRUE(store.AbortMultipartUpload(id).ok());
  EXPECT_TRUE(store.ListMultipartUploads("mp/").empty());
  EXPECT_FALSE(store.Contains("mp/object"));
  // Second abort (and abort of a never-created id) is Ok — recovery may
  // race a writer's own cleanup.
  EXPECT_TRUE(store.AbortMultipartUpload(id).ok());
  EXPECT_TRUE(store.AbortMultipartUpload("no-such-upload").ok());
  // Completing an aborted upload must fail.
  EXPECT_FALSE(store.CompleteMultipartUpload(id).ok());
}

TEST(PutFaultTest, TornWriteStoresPrefixButReportsSuccess) {
  ObjectStore store;
  FaultPlan plan;
  plan.seed = 21;
  plan.rules.push_back(FaultRule::PutTornWrite("victim", 1, 3));
  store.InstallFaultPlan(plan);
  const std::string data = "0123456789";
  ASSERT_TRUE(
      store.Put("victim", reinterpret_cast<const u8*>(data.data()), data.size())
          .ok());  // silent: the ack lies
  std::vector<u8> blob;
  ASSERT_TRUE(store.GetObject("victim", &blob).ok());
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "012") << "3-byte prefix";
  EXPECT_EQ(store.faults_injected(), 1u);
}

TEST(PutFaultTest, PartialPartKeepsPrefixAndReportsUnavailable) {
  ObjectStore store;
  FaultPlan plan;
  plan.seed = 22;
  plan.rules.push_back(FaultRule::PutPartialPart("mp/object", 1, 2));
  store.InstallFaultPlan(plan);
  std::string id;
  ASSERT_TRUE(store.CreateMultipartUpload("mp/object", &id).ok());
  const std::string p = "abcdef";
  Status status =
      store.UploadPart(id, 1, reinterpret_cast<const u8*>(p.data()), p.size());
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  // The damaged prefix is visible to ListParts — exactly what a resuming
  // writer must detect (size/CRC mismatch) and re-upload.
  std::vector<PartInfo> parts;
  ASSERT_TRUE(store.ListParts(id, nullptr, &parts).ok());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size, 2u);
  // Retry replaces the part; the object assembles clean.
  ASSERT_TRUE(
      store.UploadPart(id, 1, reinterpret_cast<const u8*>(p.data()), p.size())
          .ok());
  ASSERT_TRUE(store.CompleteMultipartUpload(id).ok());
  std::vector<u8> blob;
  ASSERT_TRUE(store.GetObject("mp/object", &blob).ok());
  EXPECT_EQ(std::string(blob.begin(), blob.end()), p);
}

TEST(PutFaultTest, CrashBeforeAndAfterWriteDifferInApplication) {
  const std::string data = "payload";
  {
    ObjectStore store;
    FaultPlan plan;
    plan.seed = 23;
    plan.rules.push_back(FaultRule::PutCrashBefore("k", 1));
    store.InstallFaultPlan(plan);
    EXPECT_TRUE(store
                    .Put("k", reinterpret_cast<const u8*>(data.data()),
                         data.size())
                    .IsIoError());
    EXPECT_FALSE(store.Contains("k")) << "crash-before must not apply";
  }
  {
    ObjectStore store;
    FaultPlan plan;
    plan.seed = 24;
    plan.rules.push_back(FaultRule::PutCrashAfter("k", 1));
    store.InstallFaultPlan(plan);
    EXPECT_TRUE(store
                    .Put("k", reinterpret_cast<const u8*>(data.data()),
                         data.size())
                    .IsIoError());
    EXPECT_TRUE(store.Contains("k")) << "crash-after applied then failed";
  }
}

TEST(PutFaultTest, PutChaosPlanIsDeterministicPerSeed) {
  auto run = [](u64 seed) {
    ObjectStore store;
    store.InstallFaultPlan(MakePutChaosPlan(seed, 0.5));
    std::string trace;
    std::vector<u8> data(1024, 0xAB);
    for (int i = 0; i < 40; i++) {
      Status status =
          store.Put("chaos/" + std::to_string(i), data.data(), data.size());
      trace += status.ok() ? 'o' : 'x';
    }
    return trace;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78)) << "different seeds, different schedules";
}

TEST(ScanModelTest, NetworkBoundWhenCpuIsFast) {
  // Uncompressed data: lots of bytes, trivial decompression.
  S3Config config;
  ScanMeasurement m;
  m.compressed_bytes = 100ull << 30;  // 100 GiB on the wire
  m.uncompressed_bytes = m.compressed_bytes;
  m.single_thread_decompress_seconds = 1.0;  // trivially cheap
  ScanResult r = SimulateScan(m, config);
  EXPECT_TRUE(r.network_bound);
  // T_c approaches the NIC rate.
  EXPECT_GT(r.tc_gbit, 90.0);
  EXPECT_LT(r.tc_gbit, 100.0);
}

TEST(ScanModelTest, CpuBoundWhenDecompressionIsSlow) {
  // Heavy codec: few bytes on the wire but expensive decompression.
  S3Config config;
  ScanMeasurement m;
  m.compressed_bytes = 10ull << 30;
  m.uncompressed_bytes = 60ull << 30;
  m.single_thread_decompress_seconds = 2000.0;  // / 36 cores = 55 s
  ScanResult r = SimulateScan(m, config);
  EXPECT_FALSE(r.network_bound);
  EXPECT_LT(r.tc_gbit, 20.0);  // network underutilized (paper Section 6.7)
}

TEST(ScanModelTest, BetterRatioAndFastCpuIsCheaper) {
  // The paper's core claim: better compression with fast decompression
  // lowers scan cost.
  S3Config config;
  ScanMeasurement parquet;  // ratio ~3.4, moderate decompression
  parquet.uncompressed_bytes = 120ull << 30;
  parquet.compressed_bytes = parquet.uncompressed_bytes / 3;
  parquet.single_thread_decompress_seconds = 4000;
  ScanMeasurement btrblocks;  // ratio ~5.3, fast decompression
  btrblocks.uncompressed_bytes = parquet.uncompressed_bytes;
  btrblocks.compressed_bytes = btrblocks.uncompressed_bytes / 5;
  btrblocks.single_thread_decompress_seconds = 800;
  ScanResult pr = SimulateScan(parquet, config);
  ScanResult br = SimulateScan(btrblocks, config);
  EXPECT_LT(br.cost_usd, pr.cost_usd);
  EXPECT_GT(br.tr_gbps, pr.tr_gbps);
}

TEST(ScanModelTest, RequestCostCountsGets) {
  S3Config config;
  config.instance_cost_per_hour = 0.0;  // isolate request cost
  ScanMeasurement m;
  m.compressed_bytes = 32ull << 20;  // 2 chunks
  m.uncompressed_bytes = 64ull << 20;
  m.single_thread_decompress_seconds = 0.01;
  ScanResult r = SimulateScan(m, config);
  EXPECT_EQ(r.requests, 2u);
  EXPECT_DOUBLE_EQ(r.cost_usd, 2 * config.request_cost_usd);
}

}  // namespace
}  // namespace btr::s3sim
