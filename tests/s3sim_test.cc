// Tests for the simulated object store and the scan cost model.
#include <gtest/gtest.h>

#include <vector>

#include "s3sim/object_store.h"
#include "util/random.h"

namespace btr::s3sim {
namespace {

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store;
  Random rng(1);
  std::vector<u8> data(40 << 20);  // 40 MiB: three 16 MiB chunks
  for (u8& b : data) b = static_cast<u8>(rng.Next());
  store.Put("bucket/key", data.data(), data.size());
  EXPECT_TRUE(store.Contains("bucket/key"));
  EXPECT_EQ(store.ObjectSize("bucket/key"), data.size());

  std::vector<u8> fetched;
  store.GetObject("bucket/key", &fetched);
  EXPECT_EQ(fetched, data);
  EXPECT_EQ(store.total_requests(), 3u);  // ceil(40 MiB / 16 MiB)
  EXPECT_EQ(store.total_bytes_fetched(), data.size());
  EXPECT_GT(store.network_seconds(), 0.0);
}

TEST(ObjectStoreTest, RangedGet) {
  ObjectStore store;
  std::vector<u8> data(1000);
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<u8>(i);
  store.Put("k", data.data(), data.size());
  std::vector<u8> chunk;
  store.GetChunk("k", 100, 50, &chunk);
  ASSERT_EQ(chunk.size(), 50u);
  for (size_t i = 0; i < 50; i++) EXPECT_EQ(chunk[i], static_cast<u8>(100 + i));
  // Past-end range is clipped.
  store.GetChunk("k", 990, 50, &chunk);
  EXPECT_EQ(chunk.size(), 10u);
}

TEST(ObjectStoreTest, ResetAccounting) {
  ObjectStore store;
  std::vector<u8> data(100, 1);
  store.Put("k", data.data(), data.size());
  std::vector<u8> out;
  store.GetObject("k", &out);
  EXPECT_GT(store.total_requests(), 0u);
  store.ResetAccounting();
  EXPECT_EQ(store.total_requests(), 0u);
  EXPECT_EQ(store.total_bytes_fetched(), 0u);
  EXPECT_EQ(store.network_seconds(), 0.0);
}

TEST(ScanModelTest, NetworkBoundWhenCpuIsFast) {
  // Uncompressed data: lots of bytes, trivial decompression.
  S3Config config;
  ScanMeasurement m;
  m.compressed_bytes = 100ull << 30;  // 100 GiB on the wire
  m.uncompressed_bytes = m.compressed_bytes;
  m.single_thread_decompress_seconds = 1.0;  // trivially cheap
  ScanResult r = SimulateScan(m, config);
  EXPECT_TRUE(r.network_bound);
  // T_c approaches the NIC rate.
  EXPECT_GT(r.tc_gbit, 90.0);
  EXPECT_LT(r.tc_gbit, 100.0);
}

TEST(ScanModelTest, CpuBoundWhenDecompressionIsSlow) {
  // Heavy codec: few bytes on the wire but expensive decompression.
  S3Config config;
  ScanMeasurement m;
  m.compressed_bytes = 10ull << 30;
  m.uncompressed_bytes = 60ull << 30;
  m.single_thread_decompress_seconds = 2000.0;  // / 36 cores = 55 s
  ScanResult r = SimulateScan(m, config);
  EXPECT_FALSE(r.network_bound);
  EXPECT_LT(r.tc_gbit, 20.0);  // network underutilized (paper Section 6.7)
}

TEST(ScanModelTest, BetterRatioAndFastCpuIsCheaper) {
  // The paper's core claim: better compression with fast decompression
  // lowers scan cost.
  S3Config config;
  ScanMeasurement parquet;  // ratio ~3.4, moderate decompression
  parquet.uncompressed_bytes = 120ull << 30;
  parquet.compressed_bytes = parquet.uncompressed_bytes / 3;
  parquet.single_thread_decompress_seconds = 4000;
  ScanMeasurement btrblocks;  // ratio ~5.3, fast decompression
  btrblocks.uncompressed_bytes = parquet.uncompressed_bytes;
  btrblocks.compressed_bytes = btrblocks.uncompressed_bytes / 5;
  btrblocks.single_thread_decompress_seconds = 800;
  ScanResult pr = SimulateScan(parquet, config);
  ScanResult br = SimulateScan(btrblocks, config);
  EXPECT_LT(br.cost_usd, pr.cost_usd);
  EXPECT_GT(br.tr_gbps, pr.tr_gbps);
}

TEST(ScanModelTest, RequestCostCountsGets) {
  S3Config config;
  config.instance_cost_per_hour = 0.0;  // isolate request cost
  ScanMeasurement m;
  m.compressed_bytes = 32ull << 20;  // 2 chunks
  m.uncompressed_bytes = 64ull << 20;
  m.single_thread_decompress_seconds = 0.01;
  ScanResult r = SimulateScan(m, config);
  EXPECT_EQ(r.requests, 2u);
  EXPECT_DOUBLE_EQ(r.cost_usd, 2 * config.request_cost_usd);
}

}  // namespace
}  // namespace btr::s3sim
