// CRC32C: known-answer vectors (RFC 3720 / the values every other CRC32C
// implementation agrees on), hardware/software cross-check, and the
// Extend composition the file format relies on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/random.h"

namespace btr {
namespace internal {
u32 Crc32cSoftwareForTest(const void* data, size_t n);
}  // namespace internal

namespace {

TEST(Crc32cTest, KnownAnswerVectors) {
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  // "123456789" — the canonical CRC check string.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // 32 zero bytes (RFC 3720 Appendix B.4).
  std::vector<u8> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 0xFF bytes.
  std::vector<u8> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  // 0x00..0x1F ascending.
  std::vector<u8> ascending(32);
  for (size_t i = 0; i < 32; i++) ascending[i] = static_cast<u8>(i);
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, HardwareAndSoftwareAgree) {
  Random rng(123);
  // Odd lengths and offsets exercise the head/tail handling of both the
  // slice-by-8 and the u64-at-a-time SSE paths.
  for (size_t n : {0ul, 1ul, 3ul, 7ul, 8ul, 9ul, 63ul, 64ul, 65ul, 1000ul,
                   4096ul, 100001ul}) {
    std::vector<u8> data(n + 3);
    for (u8& b : data) b = static_cast<u8>(rng.Next());
    for (size_t shift = 0; shift < 3; shift++) {
      EXPECT_EQ(Crc32c(data.data() + shift, n),
                internal::Crc32cSoftwareForTest(data.data() + shift, n))
          << "n=" << n << " shift=" << shift;
    }
  }
}

TEST(Crc32cTest, ExtendComposesLikeOneShot) {
  Random rng(7);
  std::vector<u8> data(10000);
  for (u8& b : data) b = static_cast<u8>(rng.Next());
  u32 whole = Crc32c(data.data(), data.size());
  for (size_t split : {0ul, 1ul, 8ul, 4999ul, 9999ul, 10000ul}) {
    u32 part = Crc32c(data.data(), split);
    u32 combined = Crc32cExtend(part, data.data() + split, data.size() - split);
    EXPECT_EQ(combined, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, CombineStitchesIndependentCrcs) {
  // Crc32cCombine(Crc32c(A), Crc32c(B), len_B) == Crc32c(A || B) without
  // ever touching A's bytes again — the write path uses this to stitch a
  // column file's header CRC onto the running payload CRC.
  Random rng(11);
  std::vector<u8> data(20000);
  for (u8& b : data) b = static_cast<u8>(rng.Next());
  u32 whole = Crc32c(data.data(), data.size());
  for (size_t split : {0ul, 1ul, 7ul, 512ul, 10001ul, 19999ul, 20000ul}) {
    u32 a = Crc32c(data.data(), split);
    u32 b = Crc32c(data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32cCombine(a, b, data.size() - split), whole)
        << "split=" << split;
  }
  // len_b == 0 is the identity on the left operand.
  EXPECT_EQ(Crc32cCombine(whole, 0, 0), whole);
  EXPECT_EQ(Crc32cCombine(0xDEADBEEFu, Crc32c("", 0), 0), 0xDEADBEEFu);
  // Three-way composition associates.
  u32 ab = Crc32cCombine(Crc32c(data.data(), 5000),
                         Crc32c(data.data() + 5000, 5000), 5000);
  u32 abc = Crc32cCombine(ab, Crc32c(data.data() + 10000, 10000), 10000);
  EXPECT_EQ(abc, whole);
}

TEST(Crc32cTest, SingleBitFlipAlwaysChangesChecksum) {
  // The property the scan path depends on: any 1-bit corruption in a block
  // payload is detected (CRCs detect all 1-bit errors by construction).
  std::vector<u8> data(257);
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<u8>(i * 31);
  u32 clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    for (int bit = 0; bit < 8; bit++) {
      data[byte] ^= static_cast<u8>(1 << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<u8>(1 << bit);
    }
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace btr
