// btr::Scanner: the pipelined scan must be bit-identical to sequential
// decompress-then-filter across all three column types, honor zone-map
// pruning and compressed-form predicate pushdown, handle the short final
// block, and surface poisoned blocks as a Status instead of crashing.
#include "btr/scanner.h"

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "btr/btrblocks.h"
#include "btr/predicate.h"
#include "write/manifest.h"

namespace btr {
namespace {

// 2 full blocks + a short final block. The int column is clustered per
// block (block b holds values in [b*1000, b*1000+999]) so zone maps can
// prune point queries; strings repeat a small dictionary; every column
// gets some NULLs.
constexpr u32 kRows = 2 * kBlockCapacity + 22000;

Relation MakeTable() {
  Relation table("scan_table");
  Column& ints = table.AddColumn("id", ColumnType::kInteger);
  Column& doubles = table.AddColumn("price", ColumnType::kDouble);
  Column& strings = table.AddColumn("city", ColumnType::kString);
  const char* cities[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < kRows; i++) {
    u32 block = i / kBlockCapacity;
    if (i % 97 == 13) {
      ints.AppendNull();
    } else {
      ints.AppendInt(static_cast<i32>(block * 1000 + i % 1000));
    }
    if (i % 101 == 7) {
      doubles.AppendNull();
    } else {
      doubles.AppendDouble(static_cast<double>(i % 4096) * 0.25);
    }
    if (i % 89 == 3) {
      strings.AppendNull();
    } else {
      strings.AppendString(cities[i % 4]);
    }
  }
  return table;
}

struct Fixture {
  CompressionConfig config;
  Relation table = MakeTable();
  CompressedRelation compressed;
  TableZoneMap zones;
  s3sim::ObjectStore store;

  Fixture() {
    compressed = CompressRelation(table, config);
    for (const Column& column : table.columns()) {
      zones.columns.push_back(ComputeColumnZoneMap(column));
    }
    Status status =
        UploadCompressedRelation(compressed, &zones, "lake/", &store);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
};

ScanSpec PipelinedSpec() {
  ScanSpec spec;
  spec.config.scan_threads = 4;
  spec.config.fetch_threads = 3;
  spec.config.prefetch_depth = 4;
  return spec;
}

void ExpectBlocksBitIdentical(const DecodedBlock& expected,
                              const DecodedBlock& actual) {
  ASSERT_EQ(expected.type, actual.type);
  ASSERT_EQ(expected.count, actual.count);
  EXPECT_EQ(expected.null_flags, actual.null_flags);
  switch (expected.type) {
    case ColumnType::kInteger:
      EXPECT_EQ(expected.ints, actual.ints);
      break;
    case ColumnType::kDouble:
      ASSERT_EQ(expected.doubles.size(), actual.doubles.size());
      // memcmp: bit-identical, including any NaN payloads.
      EXPECT_EQ(0, std::memcmp(expected.doubles.data(), actual.doubles.data(),
                               expected.doubles.size() * sizeof(double)));
      break;
    case ColumnType::kString:
      ASSERT_EQ(expected.strings.slots.size(), actual.strings.slots.size());
      for (u32 i = 0; i < expected.count; i++) {
        EXPECT_EQ(expected.strings.Get(i), actual.strings.Get(i)) << "row " << i;
      }
      break;
  }
}

TEST(ScannerTest, FullScanBitIdenticalToSequential) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanOutput output;
  Status status = scanner.Scan(PipelinedSpec(), &output);
  ASSERT_TRUE(status.ok()) << status.ToString();

  ASSERT_EQ(output.columns.size(), 3u);
  u32 block_count = static_cast<u32>(f.compressed.columns[0].blocks.size());
  ASSERT_EQ(block_count, 3u);  // 2 full + 1 short
  EXPECT_EQ(output.stats.row_blocks, block_count);
  EXPECT_EQ(output.stats.blocks_decoded, block_count);
  EXPECT_EQ(output.stats.blocks_pruned, 0u);
  EXPECT_EQ(output.stats.rows_matched, kRows);

  // Sequential reference: decompress every block of every column directly.
  for (size_t c = 0; c < f.compressed.columns.size(); c++) {
    const CompressedColumn& column = f.compressed.columns[c];
    ASSERT_EQ(output.columns[c].blocks.size(), column.blocks.size());
    DecodedBlock reference;
    for (size_t b = 0; b < column.blocks.size(); b++) {
      DecompressBlock(column.blocks[b].data(), &reference, f.config);
      ExpectBlocksBitIdentical(reference, output.columns[c].blocks[b]);
    }
  }
  // Short final block.
  EXPECT_EQ(output.columns[0].blocks.back().count, kRows % kBlockCapacity);
}

TEST(ScannerTest, PredicateScanPrunesAndMatchesSequentialFilter) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());
  ASSERT_TRUE(scanner.has_zone_map());

  // Only block 1 holds ids in [1000, 1999]; blocks 0 and 2 must be pruned
  // by zone maps, never fetched.
  const i32 probe = 1500;
  ScanSpec spec = PipelinedSpec();
  spec.columns = {"id", "price"};
  spec.predicates.push_back(Predicate::EqualsInt("id", probe));

  ScanOutput output;
  Status status = scanner.Scan(spec, &output);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(output.stats.blocks_pruned, 2u);
  EXPECT_EQ(output.stats.blocks_decoded, 1u);
  EXPECT_EQ(output.block_outcomes[0], BlockOutcome::kPruned);
  EXPECT_EQ(output.block_outcomes[1], BlockOutcome::kDecoded);
  EXPECT_EQ(output.block_outcomes[2], BlockOutcome::kPruned);

  // Selection must equal the compressed-scan kernel run sequentially.
  RoaringBitmap expected =
      SelectMatches(f.compressed.columns[0].blocks[1].data(),
                    Predicate::EqualsInt("c", probe), f.config);
  EXPECT_EQ(expected.ToVector(), output.block_selections[1].ToVector());
  EXPECT_EQ(output.stats.rows_matched, expected.Cardinality());
  ASSERT_GT(output.stats.rows_matched, 0u);

  // Decoded values of the surviving block are bit-identical to sequential.
  DecodedBlock reference;
  for (size_t c = 0; c < 2; c++) {
    DecompressBlock(f.compressed.columns[c].blocks[1].data(), &reference,
                    f.config);
    ExpectBlocksBitIdentical(reference, output.columns[c].blocks[1]);
  }
  // Pruned blocks stay empty.
  EXPECT_EQ(output.columns[0].blocks[0].count, 0u);
  EXPECT_EQ(output.columns[1].blocks[2].count, 0u);
}

TEST(ScannerTest, PredicateOnNonProjectedColumnFiltersProjection) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = PipelinedSpec();
  spec.columns = {"price"};  // predicate column not projected
  spec.predicates.push_back(Predicate::EqualsString("city", "bonn"));

  ScanOutput output;
  Status status = scanner.Scan(spec, &output);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(output.columns.size(), 1u);
  EXPECT_EQ(output.columns[0].name, "price");

  u64 expected_matches = 0;
  for (size_t b = 0; b < f.compressed.columns[2].blocks.size(); b++) {
    RoaringBitmap sel =
        SelectMatches(f.compressed.columns[2].blocks[b].data(),
                      Predicate::EqualsString("c", "bonn"), f.config);
    if (output.block_outcomes[b] == BlockOutcome::kDecoded) {
      EXPECT_EQ(sel.ToVector(), output.block_selections[b].ToVector());
    } else {
      EXPECT_TRUE(sel.Empty());
    }
    expected_matches += sel.Cardinality();
  }
  EXPECT_EQ(output.stats.rows_matched, expected_matches);
  ASSERT_GT(expected_matches, 0u);
}

TEST(ScannerTest, EmptySelectionSkipsDecompression) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  // 431 is inside every block's int zone range [b*1000, b*1000+999] only
  // for block 0; for blocks 1/2 zones prune. Instead probe a value inside
  // block 0's range that never occurs: ids hit every value in [0, 999]
  // except... they don't skip any, so use the double column: 0.125 lies
  // within [0, 1023.75] but i%4096*0.25 only produces multiples of 0.25.
  ScanSpec spec = PipelinedSpec();
  spec.columns = {"id"};
  spec.predicates.push_back(Predicate::EqualsDouble("price", 0.125));

  ScanOutput output;
  Status status = scanner.Scan(spec, &output);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(output.stats.rows_matched, 0u);
  EXPECT_EQ(output.stats.blocks_decoded, 0u);
  // Every non-pruned block must be skipped by the compressed-form
  // predicate evaluation, not decompressed.
  EXPECT_EQ(output.stats.blocks_skipped + output.stats.blocks_pruned,
            output.stats.row_blocks);
}

TEST(ScannerTest, PoisonedBlockSurfacesStatusNotCrash) {
  Fixture f;
  // Corrupt the type byte of block 1 of the "id" column object. The
  // upload committed through the versioned write path, so resolve the
  // physical ".v<N>" name the way Scanner::Open does.
  std::string resolved;
  ASSERT_TRUE(write::ResolveCommittedName(&f.store, "lake/", "scan_table",
                                          &resolved)
                  .ok());
  std::string key = ColumnFileKey("lake/", resolved, 0);
  std::vector<u8> object;
  ASSERT_TRUE(f.store.GetObject(key, &object).ok());
  const CompressedColumn& column = f.compressed.columns[0];
  u64 offset = ColumnFileHeaderBytes(column.blocks.size());
  offset += column.blocks[0].size();  // start of block 1
  object[offset] = 0x7F;              // invalid column type byte
  ASSERT_TRUE(f.store.Put(key, object.data(), object.size()).ok());

  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());
  ScanOutput output;
  Status status = scanner.Scan(PipelinedSpec(), &output);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption) << status.ToString();
}

TEST(ScannerTest, SpecErrorsAreStatuses) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec unknown = PipelinedSpec();
  unknown.columns = {"nope"};
  ScanOutput output;
  EXPECT_EQ(scanner.Scan(unknown, &output).code(), Status::Code::kNotFound);

  // Integer literals against double columns are coerced, not rejected.
  ScanSpec coerced = PipelinedSpec();
  coerced.predicates.push_back(Predicate::EqualsInt("price", 3));
  EXPECT_TRUE(scanner.Scan(coerced, &output).ok());

  ScanSpec mismatch = PipelinedSpec();
  mismatch.predicates.push_back(Predicate::EqualsString("id", "nope"));
  EXPECT_EQ(scanner.Scan(mismatch, &output).code(),
            Status::Code::kInvalidArgument);

  Scanner unopened(&f.store, "scan_table", "lake/");
  EXPECT_EQ(unopened.Scan(PipelinedSpec(), &output).code(),
            Status::Code::kInvalidArgument);

  Scanner missing(&f.store, "no_such_table", "lake/");
  EXPECT_EQ(missing.Open().code(), Status::Code::kNotFound);
}

TEST(ScannerTest, StreamingChunksArriveInOrder) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = PipelinedSpec();
  spec.columns = {"id", "city"};
  std::vector<std::pair<u32, u32>> order;  // (block, column)
  ScanStats stats;
  Status status = scanner.Scan(
      spec,
      [&](ColumnChunk&& chunk) { order.emplace_back(chunk.block, chunk.column); },
      &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(order.size(), 3u * 2u);
  for (size_t i = 1; i < order.size(); i++) {
    EXPECT_LT(order[i - 1], order[i]);
  }
  EXPECT_GT(stats.bytes_fetched, 0u);
  EXPECT_GT(stats.requests, 0u);
}

// Regression: ColumnChunk::row_begin used to be computed as
// u32 * kBlockCapacity, which wraps past 2^32 rows (block ≈ 67k). The
// field is u64 now and BlockRowBegin widens before multiplying.
TEST(ScannerTest, RowBeginIs64BitAndDoesNotWrap) {
  static_assert(std::is_same_v<decltype(ColumnChunk::row_begin), u64>,
                "row_begin must hold u64 row positions");

  EXPECT_EQ(BlockRowBegin(0), 0u);
  EXPECT_EQ(BlockRowBegin(1), static_cast<u64>(kBlockCapacity));
  // Block counts past 2^32 / kBlockCapacity ≈ 67109: the product no longer
  // fits in 32 bits. The u32 arithmetic would have produced the wrapped
  // value on the right.
  EXPECT_EQ(BlockRowBegin(70000), 70000ull * kBlockCapacity);
  EXPECT_GT(BlockRowBegin(70000), u64{1} << 32);
  EXPECT_NE(BlockRowBegin(70000),
            static_cast<u64>(static_cast<u32>(70000u * kBlockCapacity)));
  // The largest representable block index must not overflow u64.
  EXPECT_EQ(BlockRowBegin(0xFFFFFFFFu) / kBlockCapacity, 0xFFFFFFFFull);
}

// The emitted chunks carry BlockRowBegin-consistent row positions for
// every outcome (decoded here; pruned/skipped share the same code path).
TEST(ScannerTest, EmittedRowBeginMatchesBlockTimesCapacity) {
  Fixture f;
  Scanner scanner(&f.store, "scan_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  u32 chunks = 0;
  Status status = scanner.Scan(
      PipelinedSpec(),
      [&](ColumnChunk&& chunk) {
        EXPECT_EQ(chunk.row_begin, BlockRowBegin(chunk.block));
        EXPECT_EQ(chunk.row_begin,
                  static_cast<u64>(chunk.block) * kBlockCapacity);
        chunks++;
      },
      nullptr);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(chunks, 3u * 3u);  // 3 blocks x 3 columns
}

}  // namespace
}  // namespace btr
