// Zone map tests: pruning must never skip a block that contains a match
// (soundness) and must skip most blocks on clustered data (effectiveness).
#include <gtest/gtest.h>

#include <string>

#include "btr/btrblocks.h"
#include "btr/predicate.h"
#include "btr/zonemap.h"
#include "util/random.h"

namespace btr {
namespace {

TEST(ZoneMapTest, IntZonesSoundAndEffective) {
  // Clustered (sorted) data: each block covers a narrow range.
  Relation relation("t");
  Column& column = relation.AddColumn("x", ColumnType::kInteger);
  constexpr u32 kRows = 4 * kBlockCapacity;
  for (u32 i = 0; i < kRows; i++) column.AppendInt(static_cast<i32>(i));
  ColumnZoneMap map = ComputeColumnZoneMap(column);
  ASSERT_EQ(map.zones.size(), 4u);
  EXPECT_EQ(map.zones[0].int_min, 0);
  EXPECT_EQ(map.zones[0].int_max, static_cast<i32>(kBlockCapacity - 1));

  // A point probe may match exactly one zone.
  i32 probe = 3 * static_cast<i32>(kBlockCapacity) + 17;
  u32 candidate_blocks = 0;
  for (const BlockZone& zone : map.zones) {
    candidate_blocks += ZoneMayContainInt(zone, probe);
  }
  EXPECT_EQ(candidate_blocks, 1u);
  // Out-of-domain probes match no zone.
  for (const BlockZone& zone : map.zones) {
    EXPECT_FALSE(ZoneMayContainInt(zone, -5));
    EXPECT_FALSE(ZoneMayContainInt(zone, static_cast<i32>(kRows) + 1));
  }
  // Range overlap.
  EXPECT_TRUE(ZoneMayOverlapIntRange(map.zones[1],
                                     static_cast<i32>(kBlockCapacity) + 5,
                                     static_cast<i32>(kBlockCapacity) + 9));
  EXPECT_FALSE(ZoneMayOverlapIntRange(map.zones[1], 0, 10));
}

TEST(ZoneMapTest, SoundnessPropertyAgainstCompressedScan) {
  // Property: for random blocks and probes, zone pruning never disagrees
  // with the actual (exact) count being nonzero.
  Random rng(1);
  CompressionConfig config;
  for (int trial = 0; trial < 20; trial++) {
    Relation relation("t");
    Column& column = relation.AddColumn("x", ColumnType::kInteger);
    u32 rows = 1000 + static_cast<u32>(rng.NextBounded(2 * kBlockCapacity));
    i32 base = static_cast<i32>(rng.NextBounded(1000)) - 500;
    for (u32 i = 0; i < rows; i++) {
      if (rng.NextBounded(20) == 0) {
        column.AppendNull();
      } else {
        column.AppendInt(base + static_cast<i32>(rng.NextBounded(100)));
      }
    }
    ColumnZoneMap map = ComputeColumnZoneMap(column);
    CompressedColumn compressed = CompressColumn(column, config);
    ASSERT_EQ(map.zones.size(), compressed.blocks.size());
    for (int p = 0; p < 20; p++) {
      i32 probe = base + static_cast<i32>(rng.NextBounded(140)) - 20;
      for (size_t b = 0; b < compressed.blocks.size(); b++) {
        u32 matches =
            CountMatches(compressed.blocks[b].data(),
                         Predicate::EqualsInt("c", probe), config);
        if (matches > 0) {
          EXPECT_TRUE(ZoneMayContainInt(map.zones[b], probe))
              << "pruned a matching block, probe " << probe;
        }
      }
    }
  }
}

TEST(ZoneMapTest, StringPrefixPruning) {
  Relation relation("t");
  Column& column = relation.AddColumn("s", ColumnType::kString);
  const char* values[] = {"berlin", "chicago", "denver", "frankfurt"};
  for (int i = 0; i < 1000; i++) column.AppendString(values[i % 4]);
  ColumnZoneMap map = ComputeColumnZoneMap(column);
  ASSERT_EQ(map.zones.size(), 1u);
  const BlockZone& zone = map.zones[0];
  EXPECT_TRUE(ZoneMayContainString(zone, "chicago"));
  EXPECT_TRUE(ZoneMayContainString(zone, "berlin"));
  EXPECT_FALSE(ZoneMayContainString(zone, "aachen"));   // < min
  EXPECT_FALSE(ZoneMayContainString(zone, "zurich"));   // > max
  // Inside the range but absent: may-contain must still be true
  // (zone maps are conservative, not exact).
  EXPECT_TRUE(ZoneMayContainString(zone, "dresden"));
}

TEST(ZoneMapTest, LongStringsTruncateConservatively) {
  Relation relation("t");
  Column& column = relation.AddColumn("s", ColumnType::kString);
  column.AppendString("aaaaaaaaaaaaaaaa");  // 16 bytes
  column.AppendString("aaaaaaaazzzzzzzz");
  ColumnZoneMap map = ComputeColumnZoneMap(column);
  const BlockZone& zone = map.zones[0];
  // Both share the 8-byte prefix "aaaaaaaa": probes with that prefix must
  // stay candidates regardless of their tails.
  EXPECT_TRUE(ZoneMayContainString(zone, "aaaaaaaammmm"));
  EXPECT_TRUE(ZoneMayContainString(zone, "aaaaaaaa"));
  EXPECT_FALSE(ZoneMayContainString(zone, "ab"));
  EXPECT_FALSE(ZoneMayContainString(zone, "a"));  // < both
}

TEST(ZoneMapTest, DoubleZonesAndNulls) {
  Relation relation("t");
  Column& column = relation.AddColumn("d", ColumnType::kDouble);
  for (int i = 0; i < 100; i++) column.AppendNull();
  ColumnZoneMap all_null = ComputeColumnZoneMap(column);
  EXPECT_TRUE(all_null.zones[0].all_null);
  EXPECT_FALSE(ZoneMayContainDouble(all_null.zones[0], 0.0));

  Relation relation2("t");
  Column& column2 = relation2.AddColumn("d", ColumnType::kDouble);
  column2.AppendDouble(1.5);
  column2.AppendDouble(9.75);
  column2.AppendNull();
  ColumnZoneMap map = ComputeColumnZoneMap(column2);
  EXPECT_EQ(map.zones[0].null_count, 1u);
  EXPECT_TRUE(ZoneMayContainDouble(map.zones[0], 5.0));
  EXPECT_FALSE(ZoneMayContainDouble(map.zones[0], 10.0));
  EXPECT_FALSE(ZoneMayContainDouble(map.zones[0], -1.0));
}

TEST(ZoneMapTest, NaNThenNegativeValues) {
  // Regression: a leading NaN used to consume the "first value" flag
  // without updating min/max, leaving the zone stuck at [0, 0] — a block
  // of {NaN, -5.0} then reported min 0 / max 0 and range scans for
  // negative values pruned a block that contains matches.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Relation relation("t");
  Column& column = relation.AddColumn("d", ColumnType::kDouble);
  column.AppendDouble(nan);
  column.AppendDouble(-5.0);
  ColumnZoneMap map = ComputeColumnZoneMap(column);
  const BlockZone& zone = map.zones[0];
  EXPECT_EQ(zone.double_min, -5.0);
  EXPECT_EQ(zone.double_max, -5.0);
  EXPECT_TRUE(ZoneMayContainDouble(zone, -5.0));
  EXPECT_TRUE(ZoneMayOverlapDoubleRange(zone, -10.0, 0.0, false, false));
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(zone, 0.0, 10.0, false, false));

  // All-NaN blocks carry the inverted [+inf, -inf] envelope: no ordered
  // comparison can match, so every range probe prunes — even the
  // unbounded one.
  Relation relation2("t");
  Column& all_nan = relation2.AddColumn("d", ColumnType::kDouble);
  all_nan.AppendDouble(nan);
  all_nan.AppendDouble(nan);
  ColumnZoneMap nan_map = ComputeColumnZoneMap(all_nan);
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(nan_map.zones[0], -kDoubleInf,
                                         kDoubleInf, false, false));
  EXPECT_FALSE(ZoneMayContainDouble(nan_map.zones[0], 0.0));

  // A NaN bound makes the predicate unsatisfiable: always prune.
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(zone, nan, 10.0, false, false));
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(zone, -10.0, nan, false, false));
}

TEST(ZoneMapTest, DoubleRangeBoundStrictness) {
  // Zone [1.0, 2.0]. Inclusive vs strict bounds at the zone edges decide
  // keep-vs-prune exactly at the boundary.
  Relation relation("t");
  Column& column = relation.AddColumn("d", ColumnType::kDouble);
  column.AppendDouble(1.0);
  column.AppendDouble(2.0);
  ColumnZoneMap map = ComputeColumnZoneMap(column);
  const BlockZone& zone = map.zones[0];

  // Probe range touching the zone max only at 2.0: x >= 2.0 keeps,
  // x > 2.0 prunes (no stored value can exceed the zone max).
  EXPECT_TRUE(ZoneMayOverlapDoubleRange(zone, 2.0, kDoubleInf, false, false));
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(zone, 2.0, kDoubleInf, true, false));
  // Same at the min: x <= 1.0 keeps, x < 1.0 prunes.
  EXPECT_TRUE(ZoneMayOverlapDoubleRange(zone, -kDoubleInf, 1.0, false, false));
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(zone, -kDoubleInf, 1.0, false, true));
  // Interior ranges keep regardless of strictness.
  EXPECT_TRUE(ZoneMayOverlapDoubleRange(zone, 1.5, 1.6, true, true));
  // Degenerate strict range (lo, lo) is empty: prune.
  EXPECT_FALSE(ZoneMayOverlapDoubleRange(zone, 1.5, 1.5, true, true));
}

TEST(ZoneMapTest, StringRangePrefixBounds) {
  Relation relation("t");
  Column& column = relation.AddColumn("s", ColumnType::kString);
  column.AppendString("berlin");
  column.AppendString("munich");
  ColumnZoneMap map = ComputeColumnZoneMap(column);
  const BlockZone& zone = map.zones[0];

  // Closed ranges overlapping [berlin, munich].
  EXPECT_TRUE(ZoneMayOverlapStringRange(zone, "bonn", false, "denver", false));
  EXPECT_TRUE(ZoneMayOverlapStringRange(zone, "munich", false, "zurich",
                                        false));
  EXPECT_FALSE(ZoneMayOverlapStringRange(zone, "n", false, "z", false));
  EXPECT_FALSE(ZoneMayOverlapStringRange(zone, "a", false, "b", false));
  // Open bounds on either side.
  EXPECT_TRUE(ZoneMayOverlapStringRange(zone, "", true, "c", false));
  EXPECT_TRUE(ZoneMayOverlapStringRange(zone, "m", false, "", true));
  EXPECT_FALSE(ZoneMayOverlapStringRange(zone, "mz", false, "", true));
  // 8-byte-prefix truncation stays conservative: a probe range whose
  // decision depends on bytes past the prefix must keep the block.
  Relation relation2("t");
  Column& long_strings = relation2.AddColumn("s", ColumnType::kString);
  long_strings.AppendString("aaaaaaaabbbb");
  long_strings.AppendString("aaaaaaaccccc");
  ColumnZoneMap long_map = ComputeColumnZoneMap(long_strings);
  EXPECT_TRUE(ZoneMayOverlapStringRange(long_map.zones[0], "aaaaaaaabc",
                                        false, "aaaaaaaabd", false));
}

TEST(ZoneMapTest, ExpressionPruningOverZones) {
  // ZoneMayMatch over a whole expression: AND prunes when any conjunct
  // proves empty, OR only when all disjuncts do, NOT never prunes.
  Relation relation("t");
  Column& column = relation.AddColumn("x", ColumnType::kInteger);
  for (i32 v = 100; v < 200; v++) column.AppendInt(v);
  BlockZone zone = ComputeColumnZoneMap(column).zones[0];

  EXPECT_TRUE(ZoneMayMatch(zone, Predicate::BetweenInt("x", 150, 160)));
  EXPECT_FALSE(ZoneMayMatch(zone, Predicate::BetweenInt("x", 300, 400)));
  EXPECT_FALSE(ZoneMayMatch(
      zone, PredicateExpr::And(Predicate::BetweenInt("x", 150, 160),
                               Predicate::EqualsInt("x", 500))));
  EXPECT_TRUE(ZoneMayMatch(
      zone, PredicateExpr::Or(Predicate::EqualsInt("x", 500),
                              Predicate::EqualsInt("x", 150))));
  EXPECT_FALSE(ZoneMayMatch(
      zone, PredicateExpr::Or(Predicate::EqualsInt("x", 500),
                              Predicate::EqualsInt("x", 600))));
  // NOT (x = 500) is satisfiable in this zone, and zone maps cannot prove
  // the inverse either way: never prune through NOT.
  EXPECT_TRUE(ZoneMayMatch(
      zone, PredicateExpr::Not(Predicate::EqualsInt("x", 150))));
  // Strict comparisons at the zone edge.
  EXPECT_TRUE(ZoneMayMatch(
      zone, Predicate::CompareInt("x", CompareOp::kGe, 199)));
  EXPECT_FALSE(ZoneMayMatch(
      zone, Predicate::CompareInt("x", CompareOp::kGt, 199)));
  EXPECT_TRUE(ZoneMayMatch(
      zone, Predicate::CompareInt("x", CompareOp::kLe, 100)));
  EXPECT_FALSE(ZoneMayMatch(
      zone, Predicate::CompareInt("x", CompareOp::kLt, 100)));
}

TEST(ZoneMapTest, SidecarRoundTrip) {
  Relation relation("ztable");
  Column& ints = relation.AddColumn("i", ColumnType::kInteger);
  Column& strs = relation.AddColumn("s", ColumnType::kString);
  Random rng(3);
  for (int i = 0; i < 70000; i++) {
    ints.AppendInt(static_cast<i32>(rng.NextBounded(1000)));
    strs.AppendString("v" + std::to_string(rng.NextBounded(50)));
  }
  TableZoneMap zonemap;
  for (const Column& c : relation.columns()) {
    zonemap.columns.push_back(ComputeColumnZoneMap(c));
  }
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteTableZoneMap(zonemap, dir, "ztable").ok());
  TableZoneMap loaded;
  ASSERT_TRUE(ReadTableZoneMap(dir, "ztable", &loaded).ok());
  ASSERT_EQ(loaded.columns.size(), 2u);
  ASSERT_EQ(loaded.columns[0].zones.size(), zonemap.columns[0].zones.size());
  // Compare field-by-field: BlockZone has padding bytes, and the
  // serializer deliberately zeroes them (bit-identity for the write
  // path), so a whole-struct memcmp against the in-memory original
  // would compare indeterminate padding.
  for (size_t c = 0; c < 2; c++) {
    for (size_t z = 0; z < zonemap.columns[c].zones.size(); z++) {
      const BlockZone& got = loaded.columns[c].zones[z];
      const BlockZone& want = zonemap.columns[c].zones[z];
      EXPECT_EQ(got.row_count, want.row_count);
      EXPECT_EQ(got.null_count, want.null_count);
      EXPECT_EQ(got.int_min, want.int_min);
      EXPECT_EQ(got.int_max, want.int_max);
      EXPECT_EQ(got.double_min, want.double_min);
      EXPECT_EQ(got.double_max, want.double_max);
      EXPECT_EQ(std::memcmp(got.string_min, want.string_min, 8), 0);
      EXPECT_EQ(std::memcmp(got.string_max, want.string_max, 8), 0);
      EXPECT_EQ(got.string_min_len, want.string_min_len);
      EXPECT_EQ(got.string_max_len, want.string_max_len);
      EXPECT_EQ(got.all_null, want.all_null);
    }
  }
  TableZoneMap missing;
  EXPECT_FALSE(ReadTableZoneMap(dir, "no_such_table", &missing).ok());
}

}  // namespace
}  // namespace btr
