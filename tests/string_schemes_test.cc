// String scheme tests: round trips per scheme, the fused RLE+Dict slot
// path, scheme selection on realistic string shapes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "btr/scheme_picker.h"
#include "btr/schemes/string_schemes.h"
#include "util/random.h"
#include "util/simd.h"

namespace btr {
namespace {

struct StringBlock {
  std::vector<u32> offsets{0};
  std::vector<u8> data;

  void Add(std::string_view s) {
    data.insert(data.end(), s.begin(), s.end());
    offsets.push_back(static_cast<u32>(data.size()));
  }
  StringsView View() const {
    return StringsView{offsets.data(), data.data(),
                       static_cast<u32>(offsets.size() - 1)};
  }
};

std::vector<std::string> Materialize(const DecodedStrings& decoded) {
  std::vector<std::string> out;
  out.reserve(decoded.slots.size());
  for (u32 i = 0; i < decoded.slots.size(); i++) {
    out.emplace_back(decoded.Get(i));
  }
  return out;
}

std::vector<std::string> Expected(const StringBlock& block) {
  std::vector<std::string> out;
  StringsView view = block.View();
  for (u32 i = 0; i < view.count; i++) out.emplace_back(view.Get(i));
  return out;
}

std::vector<std::string> RoundTripPicked(const StringBlock& block,
                                         const CompressionConfig& config,
                                         StringSchemeCode* chosen = nullptr) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  StringsView view = block.View();
  CompressStrings(view, &compressed, ctx, chosen);
  DecodedStrings decoded;
  DecompressStrings(compressed.data(), view.count, &decoded, config);
  return Materialize(decoded);
}

std::vector<std::string> RoundTripWithScheme(StringSchemeCode code,
                                             const StringBlock& block,
                                             const CompressionConfig& config) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  StringsView view = block.View();
  GetStringScheme(code).Compress(view, &compressed, ctx);
  DecodedStrings decoded;
  GetStringScheme(code).Decompress(compressed.data(), view.count, &decoded,
                                   config);
  return Materialize(decoded);
}

StringBlock MakeCityColumn(u64 seed, u32 count, u32 run_max = 1) {
  const char* cities[] = {"PHOENIX",  "RALEIGH", "BETHESDA", "ATHENS",
                          "BERLIN",   "",        "SEATTLE",  "01 BRONX",
                          "04 BRONX", "Curitiba"};
  Random rng(seed);
  StringBlock block;
  while (block.View().count < count) {
    const char* city = cities[rng.NextBounded(10)];
    u64 run = 1 + rng.NextBounded(run_max);
    for (u64 i = 0; i < run && block.View().count < count; i++) block.Add(city);
  }
  return block;
}

TEST(StringSchemeTest, UncompressedRoundTrip) {
  StringBlock block = MakeCityColumn(1, 5000);
  CompressionConfig config;
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kUncompressed, block, config),
            Expected(block));
}

TEST(StringSchemeTest, OneValueRoundTrip) {
  StringBlock block;
  for (int i = 0; i < 3000; i++) block.Add("CABLE,CABLE");
  CompressionConfig config;
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kOneValue, block, config),
            Expected(block));
  StringSchemeCode chosen;
  RoundTripPicked(block, config, &chosen);
  EXPECT_EQ(chosen, StringSchemeCode::kOneValue);
}

TEST(StringSchemeTest, DictRoundTripAndCompression) {
  StringBlock block = MakeCityColumn(2, 64000);
  CompressionConfig config;
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  size_t bytes =
      GetStringScheme(StringSchemeCode::kDict).Compress(block.View(), &compressed, ctx);
  EXPECT_LT(bytes, block.data.size() / 4);
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kDict, block, config),
            Expected(block));
}

TEST(StringSchemeTest, DictWithEmptyStringsAndEmbeddedZeros) {
  StringBlock block;
  std::string weird("a\0b\xff", 4);
  for (int i = 0; i < 2000; i++) {
    block.Add(i % 3 == 0 ? "" : (i % 3 == 1 ? weird : "normal"));
  }
  CompressionConfig config;
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kDict, block, config),
            Expected(block));
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kFsst, block, config),
            Expected(block));
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kDictFsst, block, config),
            Expected(block));
}

TEST(StringSchemeTest, FusedRleDictMatchesUnfused) {
  // Long runs of few values: codes cascade to RLE, fusion kicks in.
  StringBlock block = MakeCityColumn(3, 64000, /*run_max=*/40);
  CompressionConfig fused;
  fused.fused_rle_dict = true;
  CompressionConfig unfused;
  unfused.fused_rle_dict = false;
  auto a = RoundTripWithScheme(StringSchemeCode::kDict, block, fused);
  auto b = RoundTripWithScheme(StringSchemeCode::kDict, block, unfused);
  EXPECT_EQ(a, Expected(block));
  EXPECT_EQ(b, Expected(block));
  EXPECT_EQ(a, b);
}

TEST(StringSchemeTest, FsstRoundTripOnUrls) {
  Random rng(4);
  StringBlock block;
  for (int i = 0; i < 20000; i++) {
    block.Add("https://www.tableau.com/public/workbook/" +
              std::to_string(rng.NextBounded(100000)));
  }
  CompressionConfig config;
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  size_t bytes = GetStringScheme(StringSchemeCode::kFsst)
                     .Compress(block.View(), &compressed, ctx);
  // Structured URLs: FSST must get at least 2x on the byte payload.
  EXPECT_LT(bytes, block.data.size() / 2);
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kFsst, block, config),
            Expected(block));
}

TEST(StringSchemeTest, DictFsstBeatsDictOnStructuredDictionary) {
  // Many distinct but structured values (paper: Dict+FSST adds 51% on top
  // of Dictionary for strings).
  Random rng(5);
  StringBlock block;
  for (int i = 0; i < 64000; i++) {
    block.Add("5777 E MAYO BLVD APT " + std::to_string(rng.NextBounded(20000)));
  }
  CompressionConfig config;
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer dict_out, dict_fsst_out;
  size_t dict_bytes = GetStringScheme(StringSchemeCode::kDict)
                          .Compress(block.View(), &dict_out, ctx);
  size_t dict_fsst_bytes = GetStringScheme(StringSchemeCode::kDictFsst)
                               .Compress(block.View(), &dict_fsst_out, ctx);
  EXPECT_LT(dict_fsst_bytes, dict_bytes);
  EXPECT_EQ(RoundTripWithScheme(StringSchemeCode::kDictFsst, block, config),
            Expected(block));
}

TEST(StringSchemeTest, ScalarSimdEquivalence) {
  StringBlock block = MakeCityColumn(6, 64000, 10);
  CompressionConfig config;
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressStrings(block.View(), &compressed, ctx);
  std::vector<std::string> simd, scalar;
  {
    ScopedSimd on(true);
    DecodedStrings decoded;
    DecompressStrings(compressed.data(), block.View().count, &decoded, config);
    simd = Materialize(decoded);
  }
  {
    ScopedSimd off(false);
    DecodedStrings decoded;
    DecompressStrings(compressed.data(), block.View().count, &decoded, config);
    scalar = Materialize(decoded);
  }
  EXPECT_EQ(simd, Expected(block));
  EXPECT_EQ(simd, scalar);
}

class StringPickerTest : public ::testing::TestWithParam<u64> {};

TEST_P(StringPickerTest, PropertyPickedSchemeRoundTrips) {
  Random rng(GetParam());
  u32 shape = static_cast<u32>(rng.NextBounded(4));
  u32 count = 100 + static_cast<u32>(rng.NextBounded(20000));
  StringBlock block;
  for (u32 i = 0; i < count; i++) {
    switch (shape) {
      case 0: {  // random short strings
        std::string s;
        for (u64 j = 0; j < rng.NextBounded(12); j++) {
          s.push_back(static_cast<char>(rng.Next() & 0xFF));
        }
        block.Add(s);
        break;
      }
      case 1: block.Add("constant"); break;
      case 2: block.Add("id-" + std::to_string(rng.NextBounded(40))); break;
      case 3:
        block.Add("http://host/" + std::to_string(i) + "/" +
                  std::to_string(rng.NextBounded(3)));
        break;
    }
  }
  EXPECT_EQ(RoundTripPicked(block, CompressionConfig{}), Expected(block))
      << "shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringPickerTest,
                         ::testing::Range<u64>(300, 320));

}  // namespace
}  // namespace btr
