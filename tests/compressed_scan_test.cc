// Tests for predicate evaluation on compressed blocks: every fast path
// must agree exactly with decompress-then-count, including NULL handling
// and default-value probes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "btr/kernels/scan_kernels.h"
#include "btr/predicate.h"
#include "btr/relation.h"
#include "btr/scheme_picker.h"
#include "datagen/archetypes.h"
#include "util/random.h"

namespace btr {
namespace {

CompressionConfig DefaultConfig() { return CompressionConfig{}; }

// Equality counting through the public PredicateExpr API, cross-checked
// against the retained internal kernels (btr/kernels/scan_kernels.h) so
// both surfaces stay bit-identical.
u32 CountEqInt(const u8* block, i32 value, const CompressionConfig& config) {
  u32 via_expr = CountMatches(block, Predicate::EqualsInt("c", value), config);
  EXPECT_EQ(via_expr, kernels::CountEqualsInt(block, value, config));
  return via_expr;
}

u32 CountEqDouble(const u8* block, double value,
                  const CompressionConfig& config) {
  u32 via_expr =
      CountMatches(block, Predicate::EqualsDouble("c", value), config);
  EXPECT_EQ(via_expr, kernels::CountEqualsDouble(block, value, config));
  return via_expr;
}

u32 CountEqString(const u8* block, std::string_view value,
                  const CompressionConfig& config) {
  u32 via_expr = CountMatches(
      block, Predicate::EqualsString("c", std::string(value)), config);
  EXPECT_EQ(via_expr, kernels::CountEqualsString(block, value, config));
  return via_expr;
}

// Reference count via full materialization.
u32 ReferenceCountInt(const ByteBuffer& block, i32 value,
                      const CompressionConfig& config) {
  DecodedBlock decoded;
  DecompressBlock(block.data(), &decoded, config);
  u32 matches = 0;
  for (u32 i = 0; i < decoded.count; i++) {
    if (!decoded.IsNull(i) && decoded.ints[i] == value) matches++;
  }
  return matches;
}

TEST(CompressedScanTest, IntAllSchemes) {
  using datagen::IntArchetype;
  CompressionConfig config = DefaultConfig();
  Random rng(1);
  for (IntArchetype archetype : datagen::kAllIntArchetypes) {
    std::vector<i32> data = datagen::MakeInts(archetype, 64000, 3);
    ByteBuffer block;
    CompressIntBlock(data.data(), nullptr, 64000, &block, config);
    // Probe existing values and absent ones.
    std::vector<i32> probes = {data[0], data[100], data[63999], 0, -1,
                               2147483647};
    for (i32 probe : probes) {
      EXPECT_EQ(CountEqInt(block.data(), probe, config),
                ReferenceCountInt(block, probe, config))
          << datagen::IntArchetypeName(archetype) << " probe " << probe;
    }
  }
}

TEST(CompressedScanTest, ForcedSchemesMatchReference) {
  // Force each root scheme in turn so every fast path is exercised even
  // if the picker would have chosen differently.
  CompressionConfig config = DefaultConfig();
  Random rng(2);
  std::vector<i32> data(50000);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<i32>(rng.NextZipf(50, 1.3)) * 7;
  }
  for (IntSchemeCode code :
       {IntSchemeCode::kRle, IntSchemeCode::kDict, IntSchemeCode::kFrequency,
        IntSchemeCode::kBp128, IntSchemeCode::kPfor,
        IntSchemeCode::kUncompressed}) {
    CompressionConfig forced = config;
    forced.int_schemes = (1u << static_cast<u32>(IntSchemeCode::kUncompressed)) |
                         (1u << static_cast<u32>(code)) |
                         (1u << static_cast<u32>(IntSchemeCode::kBp128));
    ByteBuffer block;
    BlockCompressionInfo info;
    CompressIntBlock(data.data(), nullptr, 50000, &block, forced, &info);
    for (i32 probe : {0, 7, 14, 63, 350, -5}) {
      EXPECT_EQ(CountEqInt(block.data(), probe, forced),
                ReferenceCountInt(block, probe, forced))
          << "scheme " << static_cast<int>(info.root_scheme) << " probe "
          << probe;
    }
  }
}

TEST(CompressedScanTest, NullsNeverMatch) {
  CompressionConfig config = DefaultConfig();
  std::vector<i32> data(10000, 5);
  std::vector<u8> nulls(10000, 0);
  for (int i = 0; i < 10000; i += 3) {
    data[i] = 0;  // null rows hold the default value 0
    nulls[i] = 1;
  }
  ByteBuffer block;
  CompressIntBlock(data.data(), nulls.data(), 10000, &block, config);
  // Probing 0 must not count the NULL rows.
  EXPECT_EQ(CountEqInt(block.data(), 0, config), 0u);
  EXPECT_EQ(CountEqInt(block.data(), 5, config),
            10000u - (10000u + 2) / 3);
}

TEST(CompressedScanTest, DoubleSchemes) {
  CompressionConfig config = DefaultConfig();
  using datagen::DoubleArchetype;
  for (DoubleArchetype archetype :
       {DoubleArchetype::kZeroDominant, DoubleArchetype::kPriceRuns,
        DoubleArchetype::kFrequencyTail, DoubleArchetype::kPrice2Decimals,
        DoubleArchetype::kCoordinates}) {
    std::vector<double> data = datagen::MakeDoubles(archetype, 50000, 9);
    ByteBuffer block;
    CompressDoubleBlock(data.data(), nullptr, 50000, &block, config);
    DecodedBlock decoded;
    DecompressBlock(block.data(), &decoded, config);
    for (double probe : {data[0], data[777], 0.0, -12345.678}) {
      u64 probe_bits;
      std::memcpy(&probe_bits, &probe, 8);
      u32 reference = 0;
      for (u32 i = 0; i < decoded.count; i++) {
        u64 b;
        std::memcpy(&b, &decoded.doubles[i], 8);
        reference += b == probe_bits;
      }
      EXPECT_EQ(CountEqDouble(block.data(), probe, config), reference)
          << datagen::DoubleArchetypeName(archetype) << " probe " << probe;
    }
  }
}

TEST(CompressedScanTest, StringSchemes) {
  CompressionConfig config = DefaultConfig();
  Relation r("t");
  Column& c = r.AddColumn("s", ColumnType::kString);
  datagen::FillString(&c, datagen::StringArchetype::kCityNames, 64000, 4);
  std::vector<u32> scratch;
  StringsView view = c.StringBlock(0, 64000, &scratch);
  ByteBuffer block;
  CompressStringBlock(view, nullptr, &block, config);

  DecodedBlock decoded;
  DecompressBlock(block.data(), &decoded, config);
  for (std::string_view probe :
       {std::string_view("PHOENIX"), std::string_view("01 BRONX"),
        std::string_view("NOT PRESENT"), std::string_view("")}) {
    u32 reference = 0;
    for (u32 i = 0; i < decoded.count; i++) {
      reference += decoded.strings.Get(i) == probe;
    }
    EXPECT_EQ(CountEqString(block.data(), probe, config), reference)
        << probe;
  }
}

TEST(CompressedScanTest, OneValueFastPath) {
  CompressionConfig config = DefaultConfig();
  std::vector<i32> data(64000, 42);
  ByteBuffer block;
  CompressIntBlock(data.data(), nullptr, 64000, &block, config);
  EXPECT_TRUE(kernels::HasFastEqualsPath(block.data()));
  EXPECT_TRUE(HasFastPath(block.data(), Predicate::EqualsInt("c", 42)));
  EXPECT_EQ(CountEqInt(block.data(), 42, config), 64000u);
  EXPECT_EQ(CountEqInt(block.data(), 43, config), 0u);
}

TEST(CompressedScanTest, FastPathDetection) {
  CompressionConfig config = DefaultConfig();
  // Sequential unique ints land on bit-packing: no fast path.
  std::vector<i32> seq(64000);
  for (i32 i = 0; i < 64000; i++) seq[i] = i;
  ByteBuffer bp_block;
  CompressIntBlock(seq.data(), nullptr, 64000, &bp_block, config);
  EXPECT_FALSE(kernels::HasFastEqualsPath(bp_block.data()));
  // The expression engine *does* have a Bp128 range fast path for
  // equality (miniblock envelopes), unlike the legacy equality kernels.
  EXPECT_TRUE(HasFastPath(bp_block.data(), Predicate::EqualsInt("c", 5)));
  // ...but the count is still exact via the fallback.
  EXPECT_EQ(CountEqInt(bp_block.data(), 12345, config), 1u);
  EXPECT_EQ(CountEqInt(bp_block.data(), -1, config), 0u);
}

class CompressedScanPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(CompressedScanPropertyTest, RandomBlocksAgreeWithReference) {
  Random rng(GetParam());
  CompressionConfig config = DefaultConfig();
  u32 count = 1000 + static_cast<u32>(rng.NextBounded(30000));
  std::vector<i32> data(count);
  u32 cardinality = 1 + static_cast<u32>(rng.NextBounded(200));
  for (u32 i = 0; i < count; i++) {
    data[i] = static_cast<i32>(rng.NextBounded(cardinality)) - 50;
  }
  std::vector<u8> nulls(count, 0);
  bool with_nulls = rng.NextBounded(2) == 0;
  if (with_nulls) {
    for (u32 i = 0; i < count; i++) {
      if (rng.NextBounded(10) == 0) {
        nulls[i] = 1;
        data[i] = 0;
      }
    }
  }
  ByteBuffer block;
  CompressIntBlock(data.data(), with_nulls ? nulls.data() : nullptr, count,
                   &block, config);
  for (int p = 0; p < 10; p++) {
    i32 probe = static_cast<i32>(rng.NextBounded(cardinality + 20)) - 60;
    EXPECT_EQ(CountEqInt(block.data(), probe, config),
              ReferenceCountInt(block, probe, config))
        << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedScanPropertyTest,
                         ::testing::Range<u64>(400, 415));

}  // namespace
}  // namespace btr
