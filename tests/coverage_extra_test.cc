// Additional targeted coverage: scheme-mask semantics across types,
// multi-block boundaries with partial tails, ORC's direct string path,
// and decode-slack discipline around block edges.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "util/simd.h"
#include "lakeformat/orc_like.h"
#include "util/random.h"

namespace btr {
namespace {

TEST(SchemeMaskTest, DoubleMaskRestrictsChoices) {
  Random rng(1);
  std::vector<double> data(64000);
  for (double& v : data) v = static_cast<double>(rng.NextBounded(50)) / 2.0;
  CompressionConfig config;
  config.double_schemes =
      (1u << static_cast<u32>(DoubleSchemeCode::kUncompressed)) |
      (1u << static_cast<u32>(DoubleSchemeCode::kRle));
  DoubleSchemeCode chosen = PickDoubleScheme(data.data(), 64000, config);
  EXPECT_TRUE(chosen == DoubleSchemeCode::kUncompressed ||
              chosen == DoubleSchemeCode::kRle);
  // With the full pool on low-cardinality data, Dict must win instead.
  CompressionConfig full;
  EXPECT_EQ(PickDoubleScheme(data.data(), 64000, full), DoubleSchemeCode::kDict);
}

TEST(SchemeMaskTest, StringMaskRestrictsChoices) {
  Relation r("t");
  Column& c = r.AddColumn("s", ColumnType::kString);
  for (int i = 0; i < 30000; i++) {
    c.AppendString(i % 3 == 0 ? "alpha" : "beta");
  }
  std::vector<u32> offsets;
  StringsView view = c.StringBlock(0, 30000, &offsets);
  CompressionConfig config;
  config.string_schemes =
      (1u << static_cast<u32>(StringSchemeCode::kUncompressed));
  EXPECT_EQ(PickStringScheme(view, config), StringSchemeCode::kUncompressed);
  CompressionConfig full;
  EXPECT_EQ(PickStringScheme(view, full), StringSchemeCode::kDict);
}

TEST(MultiBlockTest, PartialTailBlock) {
  // 2 full blocks + a 37-value tail; every block round-trips.
  constexpr u32 kRows = 2 * kBlockCapacity + 37;
  Relation relation("t");
  Column& column = relation.AddColumn("x", ColumnType::kInteger);
  Random rng(2);
  for (u32 i = 0; i < kRows; i++) {
    column.AppendInt(static_cast<i32>(rng.NextBounded(100)));
  }
  CompressionConfig config;
  CompressedColumn compressed = CompressColumn(column, config);
  ASSERT_EQ(compressed.blocks.size(), 3u);
  EXPECT_EQ(compressed.block_value_counts[2], 37u);
  Relation back("t");
  CompressedRelation wrapper;
  wrapper.name = "t";
  wrapper.row_count = kRows;
  wrapper.columns.push_back(std::move(compressed));
  Relation restored = MaterializeRelation(wrapper, config);
  ASSERT_EQ(restored.row_count(), kRows);
  for (u32 i = 0; i < kRows; i++) {
    ASSERT_EQ(restored.columns()[0].ints()[i], column.ints()[i]) << i;
  }
}

TEST(OrcDirectStringTest, HighCardinalityUsesDirectEncoding) {
  // Above dictionary_key_size_threshold ORC must switch to direct
  // encoding and still round-trip.
  Relation table("t");
  Column& c = table.AddColumn("s", ColumnType::kString);
  for (int i = 0; i < 20000; i++) {
    c.AppendString("unique-" + std::to_string(i));
  }
  lakeformat::OrcOptions options;
  options.dictionary_key_size_threshold = 0.5;  // 100% distinct > 50%
  ByteBuffer file = lakeformat::WriteOrcLike(table, options);
  Relation back("t");
  ASSERT_TRUE(lakeformat::ReadOrcLike(file.data(), file.size(), &back).ok());
  ASSERT_EQ(back.row_count(), 20000u);
  for (u32 i = 0; i < 20000; i++) {
    ASSERT_EQ(back.columns()[0].GetString(i), c.GetString(i));
  }
}

TEST(DecodeSlackTest, BlockEdgeValuesSurviveOvershoot) {
  // Vectorized RLE intentionally overshoots; the *logical* values at the
  // very end of a block must still be exact for every run phase.
  CompressionConfig config;
  for (u32 tail : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u}) {
    std::vector<i32> data;
    for (u32 run = 0; data.size() < 1000 + tail; run++) {
      u32 len = (run % 2 == 0) ? 7 : tail;
      for (u32 i = 0; i < len; i++) data.push_back(static_cast<i32>(run));
    }
    data.resize(1000 + tail);
    ByteBuffer block;
    CompressIntBlock(data.data(), nullptr, static_cast<u32>(data.size()),
                     &block, config);
    DecodedBlock decoded;
    DecompressBlock(block.data(), &decoded, config);
    for (size_t i = data.size() - 10; i < data.size(); i++) {
      ASSERT_EQ(decoded.ints[i], data[i]) << "tail " << tail << " i " << i;
    }
  }
}

TEST(FusedDictTest, IntAndDoubleRleCodesDecodeFused) {
  // Long runs of few distinct values: the dictionary's code vector lands
  // on RLE and decompression takes the fused run-broadcast path. The
  // result must match the input exactly for both SIMD and scalar.
  Random rng(9);
  std::vector<i32> ints;
  std::vector<double> doubles;
  while (ints.size() < 64000) {
    i32 iv = static_cast<i32>(rng.NextBounded(20)) * 1000003;  // wide values
    double dv = static_cast<double>(rng.NextBounded(20)) * 1.25;
    u64 run = 5 + rng.NextBounded(60);
    for (u64 j = 0; j < run && ints.size() < 64000; j++) {
      ints.push_back(iv);
      doubles.push_back(dv);
    }
  }
  CompressionConfig config;
  // Force Dict at the root; RLE remains available for the codes cascade.
  config.int_schemes = (1u << static_cast<u32>(IntSchemeCode::kUncompressed)) |
                       (1u << static_cast<u32>(IntSchemeCode::kDict)) |
                       (1u << static_cast<u32>(IntSchemeCode::kRle)) |
                       (1u << static_cast<u32>(IntSchemeCode::kBp128));
  config.double_schemes =
      (1u << static_cast<u32>(DoubleSchemeCode::kUncompressed)) |
      (1u << static_cast<u32>(DoubleSchemeCode::kDict));

  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer int_vec;
  GetIntScheme(IntSchemeCode::kDict).Compress(ints.data(), 64000, &int_vec, ctx);
  ByteBuffer dbl_vec;
  GetDoubleScheme(DoubleSchemeCode::kDict)
      .Compress(doubles.data(), 64000, &dbl_vec, ctx);

  for (bool simd : {true, false}) {
    ScopedSimd scoped(simd);
    std::vector<i32> int_out(64000 + kDecodeSlack);
    GetIntScheme(IntSchemeCode::kDict)
        .Decompress(int_vec.data(), 64000, int_out.data());
    int_out.resize(64000);
    EXPECT_EQ(int_out, ints) << "simd=" << simd;

    std::vector<double> dbl_out(64000 + kDecodeSlack);
    GetDoubleScheme(DoubleSchemeCode::kDict)
        .Decompress(dbl_vec.data(), 64000, dbl_out.data());
    dbl_out.resize(64000);
    EXPECT_EQ(std::memcmp(dbl_out.data(), doubles.data(), 64000 * 8), 0)
        << "simd=" << simd;
  }
}

TEST(TelemetryTest, SchemeUseHistogram) {
  Telemetry telemetry;
  CompressionConfig config;
  config.telemetry = &telemetry;
  std::vector<i32> constant(64000, 1);
  ByteBuffer block;
  CompressIntBlock(constant.data(), nullptr, 64000, &block, config);
  EXPECT_EQ(telemetry.scheme_uses[static_cast<u8>(ColumnType::kInteger)]
                                 [static_cast<u8>(IntSchemeCode::kOneValue)],
            1u);
  telemetry.Reset();
  EXPECT_EQ(telemetry.compress_ns, 0u);
}

}  // namespace
}  // namespace btr
