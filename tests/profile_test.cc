// Per-scan profile (obs/profile.h) end-to-end tests.
//
// The acceptance bar: a ScanProfile attached by collect_profile must (a)
// partition the calling thread's wall time into stages that sum to the
// scan wall clock, (b) report request/cache/retry/hedge tallies that
// agree *exactly* with ScanStats and with the chaos harness's injected
// fault counts, (c) export stable schema-versioned JSON, and (d) cost
// nothing — not even an allocation — when profiling is off.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btr/btrblocks.h"
#include "btr/scanner.h"
#include "obs/profile.h"
#include "s3sim/fault.h"
#include "s3sim/object_store.h"

// Global allocation counter for the zero-cost-when-disabled test. This
// test binary replaces global new/delete (malloc-backed, so new/free
// pairs are fine here despite what the compiler can prove); the counter
// only matters for deltas measured around single-threaded regions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<btr::u64> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace btr {
namespace {

// Same shape as tests/chaos_test.cc: one full block plus a short one.
constexpr u32 kRows = kBlockCapacity + 500;

Relation MakeTable() {
  Relation table("profile_table");
  Column& ints = table.AddColumn("id", ColumnType::kInteger);
  Column& doubles = table.AddColumn("price", ColumnType::kDouble);
  Column& strings = table.AddColumn("city", ColumnType::kString);
  const char* cities[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < kRows; i++) {
    if (i % 97 == 13) {
      ints.AppendNull();
    } else {
      ints.AppendInt(static_cast<i32>(i % 1000));
    }
    doubles.AppendDouble(static_cast<double>(i % 512) * 0.5);
    strings.AppendString(cities[i % 4]);
  }
  return table;
}

ScanSpec ProfileSpec() {
  ScanSpec spec;
  spec.config.scan_threads = 4;
  spec.config.fetch_threads = 3;
  spec.config.prefetch_depth = 4;
  spec.config.max_attempts = 8;
  spec.config.initial_backoff_ns = 1000;  // 1 us
  spec.config.max_backoff_ns = 8000;      // 8 us
  spec.config.retry_budget = 1024;
  spec.config.collect_profile = true;
  return spec;
}

struct Fixture {
  CompressionConfig config;
  Relation table = MakeTable();
  CompressedRelation compressed;
  TableZoneMap zones;
  s3sim::ObjectStore store;

  Fixture() {
    compressed = CompressRelation(table, config);
    for (const Column& column : table.columns()) {
      zones.columns.push_back(ComputeColumnZoneMap(column));
    }
    Status status =
        UploadCompressedRelation(compressed, &zones, "lake/", &store);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
};

u64 StageWallSum(const obs::ScanProfile& profile) {
  u64 sum = 0;
  for (u32 s = 0; s < obs::kScanStageCount; s++) {
    sum += profile.stages[s].wall_ns;
  }
  return sum;
}

// The calling thread's stages are contiguous by construction, so their
// wall-time sum must land within 10% of the scan's wall clock (the
// acceptance bound; in practice they differ by the few timer reads
// between Scan()'s own clock and the StageTimer's).
TEST(ProfileTest, StageWallTimesSumToScanWallClock) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(ProfileSpec(), &output).ok());
  ASSERT_NE(output.stats.profile, nullptr);
  const obs::ScanProfile& profile = *output.stats.profile;

  const double wall_ns = output.stats.seconds * 1e9;
  const double sum_ns = static_cast<double>(StageWallSum(profile));
  ASSERT_GT(wall_ns, 0.0);
  EXPECT_NEAR(sum_ns, wall_ns, 0.10 * wall_ns)
      << "stage sum " << sum_ns << " vs wall " << wall_ns;
  EXPECT_DOUBLE_EQ(profile.wall_seconds, output.stats.seconds);
}

// A fault-free scan: every profile tally must agree with ScanStats, the
// GET latency histogram must have one sample per store request, and the
// per-scheme decode table must cover every decoded block part.
TEST(ProfileTest, FaultFreeTalliesMatchScanStats) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(ProfileSpec(), &output).ok());
  ASSERT_NE(output.stats.profile, nullptr);
  const obs::ScanProfile& profile = *output.stats.profile;
  const ScanStats& stats = output.stats;

  // 2 row blocks x 3 columns, nothing cached, nothing retried.
  EXPECT_EQ(profile.requests, 6u);
  EXPECT_EQ(profile.requests, stats.requests);
  EXPECT_EQ(profile.get_latency.count, 6u);
  EXPECT_EQ(profile.cache_hits, stats.cache_hits);
  EXPECT_EQ(profile.cache_misses, stats.cache_misses);
  EXPECT_EQ(profile.retries, stats.retries);
  EXPECT_EQ(profile.retried_requests, 0u);
  EXPECT_EQ(profile.hedged_requests, stats.hedges);
  EXPECT_EQ(profile.failed_requests, 0u);

  EXPECT_EQ(profile.blocks_pruned, stats.blocks_pruned);
  EXPECT_EQ(profile.blocks_skipped, stats.blocks_skipped);
  EXPECT_EQ(profile.blocks_decoded, stats.blocks_decoded);
  EXPECT_EQ(profile.blocks_unreadable, stats.blocks_unreadable);
  EXPECT_EQ(profile.bytes_fetched, stats.bytes_fetched);
  EXPECT_EQ(profile.bytes_decoded, stats.bytes_decoded);
  EXPECT_GT(profile.bytes_decoded, 0u);

  // Every decoded part lands in exactly one (type, scheme) bucket.
  u64 scheme_blocks = 0, scheme_bytes = 0;
  for (const obs::SchemeDecodeStats& s : profile.decode_by_scheme) {
    scheme_blocks += s.blocks;
    scheme_bytes += s.bytes_decoded;
  }
  EXPECT_EQ(scheme_blocks, 6u) << "2 row blocks x 3 columns";
  EXPECT_EQ(scheme_bytes, stats.bytes_decoded);
  const u32 decode_idx = static_cast<u32>(obs::ScanActivity::kDecode);
  EXPECT_EQ(profile.activities[decode_idx].count, 6u);
}

// Throttle/unavailable-only chaos: every injected fault is one failed GET
// and every failed GET costs exactly one granted retry, so the profile's
// retry tallies must equal both ScanStats and the store's injected-fault
// count — the driver-level agreement check, now per scan.
TEST(ProfileTest, ChaosRetryTalliesMatchInjectedFaults) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  u64 total_faults = 0;
  for (u64 seed = 1; seed <= 12; seed++) {
    s3sim::FaultPlan plan;
    plan.seed = seed;
    s3sim::FaultRule throttle;
    throttle.kind = s3sim::FaultKind::kThrottle;
    throttle.probability = 0.05;
    plan.rules.push_back(throttle);
    s3sim::FaultRule unavailable;
    unavailable.kind = s3sim::FaultKind::kUnavailable;
    unavailable.probability = 0.05;
    plan.rules.push_back(unavailable);
    f.store.InstallFaultPlan(plan);

    ScanOutput output;
    ASSERT_TRUE(scanner.Scan(ProfileSpec(), &output).ok()) << "seed " << seed;
    ASSERT_NE(output.stats.profile, nullptr);
    const obs::ScanProfile& profile = *output.stats.profile;

    EXPECT_EQ(profile.retries, output.stats.retries) << "seed " << seed;
    EXPECT_EQ(profile.retries, f.store.faults_injected()) << "seed " << seed;
    // Retried requests are bounded by total retries; and with retries
    // granted, at least one request needed a second attempt.
    EXPECT_LE(profile.retried_requests, profile.retries);
    if (f.store.faults_injected() > 0) {
      EXPECT_GE(profile.retried_requests, 1u) << "seed " << seed;
    }
    // Logical requests stay 6; store attempts = requests + retries.
    EXPECT_EQ(profile.requests, 6u);
    EXPECT_EQ(output.stats.requests, profile.requests + profile.retries);
    total_faults += f.store.faults_injected();
  }
  f.store.ClearFaultPlan();
  EXPECT_GT(total_faults, 0u) << "a 10% plan over 12 scans must inject";
}

// Warm block cache: the second scan resolves every fetch from the cache,
// and the profile must say so — all hits, no misses, an empty GET
// latency histogram.
TEST(ProfileTest, WarmCacheTalliesMatchScanStats) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ProfileSpec();
  spec.config.enable_block_cache = true;

  ScanOutput cold;
  ASSERT_TRUE(scanner.Scan(spec, &cold).ok());
  ASSERT_NE(cold.stats.profile, nullptr);
  EXPECT_EQ(cold.stats.profile->cache_misses, 6u);
  EXPECT_EQ(cold.stats.profile->cache_misses, cold.stats.cache_misses);
  EXPECT_EQ(cold.stats.profile->cache_hits, 0u);

  ScanOutput warm;
  ASSERT_TRUE(scanner.Scan(spec, &warm).ok());
  ASSERT_NE(warm.stats.profile, nullptr);
  const obs::ScanProfile& profile = *warm.stats.profile;
  EXPECT_EQ(profile.cache_hits, 6u);
  EXPECT_EQ(profile.cache_hits, warm.stats.cache_hits);
  EXPECT_EQ(profile.cache_misses, 0u);
  EXPECT_EQ(profile.requests, 6u);
  EXPECT_EQ(profile.get_latency.count, 0u) << "no GET left the cache";
  EXPECT_EQ(warm.stats.requests, 0u);
}

// Hedged GETs: one targeted latency spike with an aggressive hedge
// threshold forces a hedge; the profile's hedge tallies must equal the
// prefetcher's ScanStats counters.
TEST(ProfileTest, HedgeTalliesMatchScanStats) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ProfileSpec();
  spec.config.enable_hedged_gets = true;
  spec.config.hedge_min_samples = 1;
  spec.config.hedge_min_threshold_ns = 100 * 1000;  // 100 us floor
  // Sequential GETs so the first one seeds the latency quantile before
  // the spiked request arrives.
  spec.config.fetch_threads = 1;

  // Column objects are keyed <prefix><table>.<idx>.btr; ".1.btr" is the
  // "price" column. Spike its first GET by 20 ms.
  s3sim::FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(
      s3sim::FaultRule::Latency(".1.btr", 1, 20 * 1000 * 1000));
  f.store.InstallFaultPlan(plan);

  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(spec, &output).ok());
  f.store.ClearFaultPlan();
  ASSERT_NE(output.stats.profile, nullptr);
  const obs::ScanProfile& profile = *output.stats.profile;

  EXPECT_GE(output.stats.hedges, 1u) << "the 20 ms spike must arm a hedge";
  EXPECT_EQ(profile.hedged_requests, output.stats.hedges);
  EXPECT_EQ(profile.hedge_wins, output.stats.hedge_wins);
}

// CRC refetch: a targeted single-byte corruption fails block validation;
// with refetch_on_crc_failure the re-GET rescues the block, and both the
// refetch and the rescue must appear in the profile.
TEST(ProfileTest, CrcRefetchTalliesMatchScanStats) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ProfileSpec();
  spec.config.refetch_on_crc_failure = true;

  // Flip one byte in the first GET of the "price" column object.
  s3sim::FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back(s3sim::FaultRule::Corrupt(".1.btr", 1));
  f.store.InstallFaultPlan(plan);

  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(spec, &output).ok());
  f.store.ClearFaultPlan();
  ASSERT_NE(output.stats.profile, nullptr);
  const obs::ScanProfile& profile = *output.stats.profile;

  EXPECT_EQ(output.stats.crc_refetches, 1u);
  EXPECT_EQ(output.stats.crc_rescues, 1u);
  EXPECT_EQ(profile.crc_refetched_blocks, output.stats.crc_refetches);
  EXPECT_EQ(profile.crc_rescued_blocks, output.stats.crc_rescues);
}

// The slow-op exemplar ring is bounded by ScanConfig::profile_slow_ops
// and sorted slowest-first.
TEST(ProfileTest, SlowOpRingIsBoundedAndSorted) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ProfileSpec();
  spec.config.profile_slow_ops = 2;

  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(spec, &output).ok());
  ASSERT_NE(output.stats.profile, nullptr);
  const obs::ScanProfile& profile = *output.stats.profile;

  // 6 GETs + 6 decodes competed for 2 slots.
  ASSERT_EQ(profile.slow_ops.size(), 2u);
  EXPECT_GE(profile.slow_ops[0].duration_ns, profile.slow_ops[1].duration_ns);
  for (const obs::SlowOp& op : profile.slow_ops) {
    EXPECT_FALSE(op.key.empty());
  }
}

// JSON schema stability: every documented top-level key is present, the
// schema version is pinned, and the document is structurally sound
// (balanced braces/brackets outside strings). bench_compare.py and any
// dashboards key on these names — renames must bump kSchemaVersion.
TEST(ProfileTest, JsonSchemaIsStable) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(ProfileSpec(), &output).ok());
  ASSERT_NE(output.stats.profile, nullptr);
  const std::string json = output.stats.profile->ToJson();

  EXPECT_EQ(obs::ScanProfile::kSchemaVersion, 1u);
  const char* required[] = {
      "\"schema_version\":1", "\"wall_seconds\":",     "\"open_ns\":",
      "\"zone_prune_ns\":",   "\"stages\":",           "\"activities\":",
      "\"get_latency\":",     "\"tallies\":",          "\"requests\":",
      "\"cache_hits\":",      "\"retries\":",          "\"hedged_requests\":",
      "\"blocks_decoded\":",  "\"bytes_fetched\":",    "\"bytes_decoded\":",
      "\"decode_by_scheme\":", "\"slow_ops\":",
  };
  for (const char* key : required) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  // Structural soundness without a JSON library: brace/bracket balance
  // ignoring string contents and escapes.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// Profiling off: no profile object materializes, and the instrumentation
// primitives the hot path touches (stage timer with a null collector)
// perform zero heap allocations.
TEST(ProfileTest, DisabledProfilingIsFreeAndNull) {
  Fixture f;
  Scanner scanner(&f.store, "profile_table", "lake/");
  ASSERT_TRUE(scanner.Open().ok());

  ScanSpec spec = ProfileSpec();
  spec.config.collect_profile = false;
  ScanOutput output;
  ASSERT_TRUE(scanner.Scan(spec, &output).ok());
  EXPECT_EQ(output.stats.profile, nullptr);

  obs::StageTimer timer;
  const u64 before = g_alloc_count.load(std::memory_order_relaxed);
  timer.Enter(obs::ScanStage::kEmitWait);
  timer.Enter(obs::ScanStage::kEmit);
  timer.Enter(obs::ScanStage::kEmitWait);
  timer.Enter(obs::ScanStage::kTeardown);
  timer.Finish(nullptr);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "disabled-path instrumentation must not allocate";
}

}  // namespace
}  // namespace btr
