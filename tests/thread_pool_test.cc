// Thread pool tests: completion, parallel_for coverage, reuse,
// exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"

namespace btr::exec {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; i++) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 100; i++) pool.Submit([&counter] { counter++; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 100);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  ParallelFor(&pool, 0, 5000, [&](u64 i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 5000; i++) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, 0, 100, [&](u64 i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 5, 5, [&](u64) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesToWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(
      {
        try {
          pool.Wait();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotAbortOtherTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; i++) {
    pool.Submit([&counter, i] {
      if (i == 17) throw std::runtime_error("boom");
      counter.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Every non-throwing task still ran to completion.
  EXPECT_EQ(counter.load(), 99);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception was consumed by the first Wait(); the pool keeps working.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; i++) pool.Submit([&counter] { counter++; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructionWithPendingWaitCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; i++) pool.Submit([&counter] { counter++; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace btr::exec
